// varade::obs test suite.
//
// Pins the telemetry primitives from every angle the serving stack depends
// on: exact bucket geometry (every boundary of all 320 buckets), lock-free
// record vs snapshot under real concurrency (run under TSan by the
// concurrency CI job), merge algebra (associative, commutative, empty
// identity — the contract that makes per-shard instances merge-at-read
// correct), the Prometheus text exposition, and — the one that matters most
// — bit-exact score parity between instrumented and uninstrumented pushes:
// telemetry must observe the pipeline, never perturb it.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "varade/core/varade.hpp"
#include "varade/obs/prometheus.hpp"
#include "varade/obs/telemetry.hpp"
#include "varade/serve/runtime.hpp"
#include "varade/serve/scoring_engine.hpp"

namespace varade::obs {
namespace {

// ---------------------------------------------------------------------------
// Bucket geometry: every boundary of every bucket, exactly
// ---------------------------------------------------------------------------

TEST(ObsBuckets, EveryBoundaryRoundTrips) {
  for (int b = 0; b < kBuckets; ++b) {
    EXPECT_EQ(bucket_of(bucket_lower(b)), b) << "lower edge of bucket " << b;
    EXPECT_EQ(bucket_of(bucket_upper(b)), b) << "upper edge of bucket " << b;
    if (b + 1 < kBuckets) {
      // Adjacency: one past the upper edge is exactly the next bucket's
      // lower edge — no gaps, no overlaps, anywhere in the range.
      EXPECT_EQ(bucket_upper(b) + 1, bucket_lower(b + 1));
      EXPECT_EQ(bucket_of(bucket_upper(b) + 1), b + 1);
    }
  }
}

TEST(ObsBuckets, EdgeCases) {
  // Negative values clamp into bucket 0 (record() clamps them to 0 anyway).
  EXPECT_EQ(bucket_of(-1), 0);
  EXPECT_EQ(bucket_of(INT64_MIN), 0);
  // Values 0..7 get exact unit buckets.
  for (std::int64_t v = 0; v < kSubBuckets; ++v) {
    EXPECT_EQ(bucket_of(v), static_cast<int>(v));
    EXPECT_EQ(bucket_lower(static_cast<int>(v)), v);
    EXPECT_EQ(bucket_upper(static_cast<int>(v)), v);
  }
  // Anything past the covered range lands in the overflow bucket, whose
  // upper bound is INT64_MAX (exposed as +Inf).
  EXPECT_EQ(bucket_of(INT64_MAX), kBuckets - 1);
  EXPECT_EQ(bucket_upper(kBuckets - 1), INT64_MAX);
}

TEST(ObsBuckets, RelativeWidthAtMostOneEighth) {
  // The design contract: from kSubBuckets up, each bucket spans at most
  // 12.5% of its lower edge. (Exact unit buckets below have zero width.)
  for (int b = kSubBuckets; b + 1 < kBuckets; ++b) {
    const std::int64_t width = bucket_upper(b) - bucket_lower(b) + 1;
    EXPECT_LE(width * kSubBuckets, bucket_lower(b)) << "bucket " << b;
  }
}

TEST(ObsBuckets, BucketOfIsMonotone) {
  int prev = 0;
  for (std::int64_t v = 0; v < (1 << 20); v += 37) {
    const int b = bucket_of(v);
    EXPECT_GE(b, prev) << "value " << v;
    prev = b;
  }
}

// ---------------------------------------------------------------------------
// LogHistogram: single-threaded exactness, then quantiles
// ---------------------------------------------------------------------------

TEST(ObsHistogram, SingleThreadSnapshotIsExact) {
  LogHistogram h;
  const std::int64_t values[] = {0, 1, 7, 8, 9, 100, 1000, 123456, -5};
  std::int64_t sum = 0;
  for (const std::int64_t v : values) {
    h.record(v);
    sum += v < 0 ? 0 : v;  // record() clamps negatives to 0
  }
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 9U);
  EXPECT_EQ(snap.sum, sum);
  EXPECT_EQ(snap.min, 0);
  EXPECT_EQ(snap.max, 123456);
  std::uint64_t total = 0;
  for (int b = 0; b < kBuckets; ++b) total += snap.buckets[b];
  EXPECT_EQ(total, snap.count);
  // Each recorded value sits in exactly the bucket the geometry names.
  EXPECT_EQ(snap.buckets[bucket_of(0)], 2U);  // 0 itself plus the clamped -5
  EXPECT_EQ(snap.buckets[bucket_of(100)], 1U);
  EXPECT_EQ(snap.buckets[bucket_of(123456)], 1U);
}

TEST(ObsHistogram, EmptySnapshotIsAllZero) {
  const HistogramSnapshot snap = LogHistogram().snapshot();
  EXPECT_EQ(snap.count, 0U);
  EXPECT_EQ(snap.sum, 0);
  EXPECT_EQ(snap.min, 0);
  EXPECT_EQ(snap.max, 0);
  EXPECT_EQ(snap.quantile(0.5), 0);
  EXPECT_EQ(snap.mean(), 0.0);
}

TEST(ObsHistogram, QuantilesUpperBoundWithinBucketResolution) {
  LogHistogram h;
  for (int i = 1; i <= 1000; ++i) h.record(i);
  const HistogramSnapshot snap = h.snapshot();
  // quantile() reports the upper edge of the bucket that crosses the rank:
  // an upper bound on the true quantile, within the 12.5% bucket width.
  const std::int64_t p50 = snap.quantile(0.50);
  const std::int64_t p99 = snap.quantile(0.99);
  EXPECT_GE(p50, 500);
  EXPECT_LE(p50, 500 + 500 / kSubBuckets);
  EXPECT_GE(p99, 990);
  EXPECT_LE(p99, 990 + 990 / kSubBuckets);
  // The extremes clamp to observed min/max, not bucket edges.
  EXPECT_EQ(snap.quantile(1.0), 1000);
  EXPECT_EQ(snap.quantile(0.0), 1);
  EXPECT_NEAR(snap.mean(), 500.5, 1e-9);
}

// ---------------------------------------------------------------------------
// Merge algebra: what makes per-shard instances correct
// ---------------------------------------------------------------------------

HistogramSnapshot fill(std::uint64_t seed, int n) {
  Rng rng(seed);
  LogHistogram h;
  for (int i = 0; i < n; ++i)
    h.record(static_cast<std::int64_t>(std::fabs(rng.normal(0.0F, 1.0F)) * 5e4F));
  return h.snapshot();
}

void expect_same(const HistogramSnapshot& a, const HistogramSnapshot& b) {
  EXPECT_EQ(a.count, b.count);
  EXPECT_EQ(a.sum, b.sum);
  EXPECT_EQ(a.min, b.min);
  EXPECT_EQ(a.max, b.max);
  EXPECT_EQ(std::memcmp(a.buckets, b.buckets, sizeof a.buckets), 0);
}

TEST(ObsHistogram, MergeIsAssociativeCommutativeWithEmptyIdentity) {
  const HistogramSnapshot a = fill(1, 300);
  const HistogramSnapshot b = fill(2, 500);
  const HistogramSnapshot c = fill(3, 700);

  HistogramSnapshot ab_c = a;
  ab_c.merge(b);
  ab_c.merge(c);
  HistogramSnapshot a_bc = b;
  a_bc.merge(c);
  a_bc.merge(a);  // (b+c)+a: associativity and commutativity in one shape
  expect_same(ab_c, a_bc);

  HistogramSnapshot with_empty = a;
  with_empty.merge(HistogramSnapshot{});
  expect_same(with_empty, a);
  HistogramSnapshot from_empty;
  from_empty.merge(a);
  expect_same(from_empty, a);
}

TEST(ObsHistogram, MergedShardsEqualOneCombinedWriter) {
  // The serving pattern: N per-shard instances merged at read time must be
  // indistinguishable from one histogram that saw every sample.
  Rng rng(7);
  LogHistogram shard[3];
  LogHistogram combined;
  for (int i = 0; i < 3000; ++i) {
    const std::int64_t v =
        static_cast<std::int64_t>(std::fabs(rng.normal(0.0F, 1.0F)) * 1e6F);
    shard[i % 3].record(v);
    combined.record(v);
  }
  HistogramSnapshot merged = shard[0].snapshot();
  merged.merge(shard[1].snapshot());
  merged.merge(shard[2].snapshot());
  expect_same(merged, combined.snapshot());
}

// ---------------------------------------------------------------------------
// Concurrency: recorders vs a live snapshotter (run under TSan in CI)
// ---------------------------------------------------------------------------

TEST(ObsHistogram, ConcurrentRecordVersusSnapshot) {
  constexpr int kWriters = 4;
  constexpr int kPerWriter = 20000;
  LogHistogram h;
  std::atomic<bool> stop{false};

  // Reader thread: snapshots continuously while writers hammer the buckets.
  // Each per-counter read must be a plausible intermediate state — counts
  // monotone across snapshots, never beyond the final total — and TSan must
  // see no race.
  std::thread reader([&h, &stop] {
    std::uint64_t prev = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const HistogramSnapshot snap = h.snapshot();
      EXPECT_LE(snap.count,
                static_cast<std::uint64_t>(kWriters) * kPerWriter);
      EXPECT_GE(snap.count, prev);
      prev = snap.count;
    }
  });

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w)
    writers.emplace_back([&h, w] {
      for (int i = 0; i < kPerWriter; ++i)
        h.record(static_cast<std::int64_t>(w) * 1000 + i % 997);
    });
  for (std::thread& t : writers) t.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();

  // Quiescent: everything is exact.
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, static_cast<std::uint64_t>(kWriters) * kPerWriter);
  std::int64_t sum = 0;
  for (int w = 0; w < kWriters; ++w)
    for (int i = 0; i < kPerWriter; ++i) sum += static_cast<std::int64_t>(w) * 1000 + i % 997;
  EXPECT_EQ(snap.sum, sum);
  EXPECT_EQ(snap.min, 0);
  EXPECT_EQ(snap.max, 3000 + 996);
  std::uint64_t total = 0;
  for (int b = 0; b < kBuckets; ++b) total += snap.buckets[b];
  EXPECT_EQ(total, snap.count);
}

TEST(ObsCounter, ConcurrentAddsLoseNothing) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50000;
  Counter c;
  std::atomic<bool> stop{false};
  std::thread reader([&c, &stop] {
    std::uint64_t prev = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const std::uint64_t v = c.value();
      EXPECT_GE(v, prev);
      prev = v;
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t)
    writers.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.add(i % 3 == 0 ? 2 : 1);
    });
  for (std::thread& t : writers) t.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();
  std::uint64_t expected = 0;
  for (int i = 0; i < kPerThread; ++i) expected += i % 3 == 0 ? 2 : 1;
  EXPECT_EQ(c.value(), expected * kThreads);
}

TEST(ObsClock, TickIsMonotoneWhenEnabledZeroWhenOff) {
  if constexpr (kEnabled) {
    const std::int64_t a = tick();
    const std::int64_t b = tick();
    EXPECT_GT(a, 0);
    EXPECT_GE(b, a);
  } else {
    EXPECT_EQ(tick(), 0);
  }
  // now_ns() is always live, even compiled off (benches time themselves).
  EXPECT_GE(now_ns(), now_ns() - now_ns());
  const std::int64_t t0 = now_ns();
  EXPECT_GE(now_ns(), t0);
}

// ---------------------------------------------------------------------------
// Prometheus text exposition
// ---------------------------------------------------------------------------

TEST(ObsPrometheus, CounterAndGaugeFormat) {
  PrometheusWriter w;
  w.counter("varade_test_total", "a test counter", 42);
  w.counter("varade_test_total", "a test counter", 7, "shard=\"1\"");
  w.gauge("varade_depth", "a gauge", 2.5);
  const std::string& text = w.text();
  // HELP/TYPE once per family, even across labelled series.
  EXPECT_EQ(text.find("# HELP varade_test_total a test counter\n"),
            text.rfind("# HELP varade_test_total"));
  EXPECT_NE(text.find("# TYPE varade_test_total counter\n"), std::string::npos);
  EXPECT_NE(text.find("\nvarade_test_total 42\n"), std::string::npos);
  EXPECT_NE(text.find("\nvarade_test_total{shard=\"1\"} 7\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE varade_depth gauge\n"), std::string::npos);
  EXPECT_NE(text.find("\nvarade_depth 2.5\n"), std::string::npos);
}

TEST(ObsPrometheus, HistogramIsCumulativeAndConsistent) {
  LogHistogram h;
  for (const std::int64_t v : {5, 5, 100, 100000, 100000, 100000})
    h.record(v);
  PrometheusWriter w;
  w.histogram("varade_lat_seconds", "latency", h.snapshot(), /*scale=*/1e-9,
              "phase=\"score\"");
  const std::string text = w.text();
  EXPECT_NE(text.find("# TYPE varade_lat_seconds histogram\n"), std::string::npos);
  // Sparse buckets: three non-empty edges plus the mandatory +Inf.
  // Cumulative counts along the le series must be non-decreasing and end at
  // _count.
  std::vector<double> cum;
  std::size_t pos = 0;
  while ((pos = text.find("varade_lat_seconds_bucket{phase=\"score\",le=", pos)) !=
         std::string::npos) {
    const std::size_t sp = text.find(' ', pos);
    cum.push_back(std::stod(text.substr(sp + 1)));
    pos = sp;
  }
  ASSERT_EQ(cum.size(), 4U);  // 3 sparse edges + "+Inf"
  for (std::size_t i = 1; i < cum.size(); ++i) EXPECT_GE(cum[i], cum[i - 1]);
  EXPECT_EQ(cum.back(), 6.0);
  EXPECT_NE(text.find("varade_lat_seconds_bucket{phase=\"score\",le=\"+Inf\"} 6\n"),
            std::string::npos);
  EXPECT_NE(text.find("varade_lat_seconds_count{phase=\"score\"} 6\n"),
            std::string::npos);
  EXPECT_NE(text.find("varade_lat_seconds_sum{phase=\"score\"} "), std::string::npos);
}

}  // namespace
}  // namespace varade::obs

// ---------------------------------------------------------------------------
// Parity: telemetry observes the pipeline, never perturbs it
// ---------------------------------------------------------------------------

namespace varade::serve {
namespace {

data::MultivariateSeries make_sine(Index length, std::uint64_t seed) {
  Rng rng(seed);
  data::MultivariateSeries s(3);
  std::vector<float> row(3);
  for (Index t = 0; t < length; ++t) {
    for (Index c = 0; c < 3; ++c)
      row[static_cast<std::size_t>(c)] =
          std::sin(0.05F * static_cast<float>(t) + static_cast<float>(c)) +
          rng.normal(0.0F, 0.03F);
    s.append(row, 0);
  }
  return s;
}

/// One tiny fitted VARADE shared by the parity tests (fitting dominates; the
/// engine only reads the model).
struct ObsRig {
  data::MultivariateSeries train_raw = make_sine(400, 1);
  data::MinMaxNormalizer normalizer;
  data::MultivariateSeries train;
  core::VaradeDetector detector;

  ObsRig()
      : detector({.window = 16,
                  .base_channels = 4,
                  .epochs = 1,
                  .learning_rate = 1e-3F,
                  .train_stride = 4}) {
    normalizer.fit(train_raw);
    train = normalizer.transform(train_raw);
    detector.fit(train);
  }
};

ObsRig& rig() {
  static ObsRig* r = new ObsRig();
  return *r;
}

void expect_scores_identical(const std::vector<StreamScore>& a,
                             const std::vector<StreamScore>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].stream, b[i].stream);
    EXPECT_EQ(a[i].sample, b[i].sample);
    // Bit comparison, not float ==: parity means identical IEEE-754 bits.
    EXPECT_EQ(std::memcmp(&a[i].score, &b[i].score, sizeof(float)), 0)
        << "score " << i << " diverged";
  }
}

TEST(ObsParity, TimestampedPushesScoreBitIdentically) {
  // Same samples through the plain push() and the telemetry-carrying
  // overload (live tick() timestamps): the scores must be bit-identical —
  // the push_to_score lane is a side channel, not a pipeline input.
  const auto series = make_sine(120, 11);
  constexpr Index kStreams = 4;

  ScoringEngine plain(rig().detector, rig().normalizer, {.max_batch = 8});
  ScoringEngine timed(rig().detector, rig().normalizer, {.max_batch = 8});
  plain.add_streams(kStreams);
  timed.add_streams(kStreams);
  plain.calibrate(rig().train);
  timed.calibrate(rig().train);

  std::vector<StreamScore> plain_scores;
  std::vector<StreamScore> timed_scores;
  for (Index t = 0; t < series.length(); ++t) {
    for (Index s = 0; s < kStreams; ++s) {
      plain.push(s, series.sample(t), series.n_channels());
      timed.push(s, series.sample(t), series.n_channels(), obs::tick());
    }
    if (t % 7 == 0) {  // interleave steps so rounds span push batches
      auto ps = plain.step();
      auto ts = timed.step();
      plain_scores.insert(plain_scores.end(), ps.begin(), ps.end());
      timed_scores.insert(timed_scores.end(), ts.begin(), ts.end());
    }
  }
  auto ps = plain.step();
  auto ts = timed.step();
  plain_scores.insert(plain_scores.end(), ps.begin(), ps.end());
  timed_scores.insert(timed_scores.end(), ts.begin(), ts.end());

  expect_scores_identical(plain_scores, timed_scores);

  // And the side channel actually observed the traffic (when compiled in).
  const EngineTelemetry tel = timed.telemetry();
  if constexpr (obs::kEnabled) {
    EXPECT_GT(tel.step.count, 0U);
    EXPECT_GT(tel.phases[0].count, 0U);  // stage runs every round
    EXPECT_GT(tel.phases[3].count, 0U);  // score runs once streams warm
    EXPECT_GT(tel.push_to_score.count, 0U);
    EXPECT_GT(tel.push_to_score.max, 0);
  } else {
    EXPECT_EQ(tel.step.count, 0U);
    EXPECT_EQ(tel.push_to_score.count, 0U);
  }
}

TEST(ObsParity, RuntimeTelemetryObservesWithoutChangingScores) {
  // The async runtime with telemetry live must emit the same per-stream
  // scores as a synchronous engine fed the same samples — the existing
  // determinism contract, re-pinned with the telemetry lane active — and
  // its telemetry() must carry the scorer-loop histograms.
  const auto series = make_sine(300, 13);
  constexpr Index kStreams = 3;

  ScoringEngine sync(rig().detector, rig().normalizer, {.max_batch = 8});
  sync.add_streams(kStreams);
  sync.calibrate(rig().train);
  std::vector<std::vector<float>> expected(kStreams);
  for (Index t = 0; t < series.length(); ++t)
    for (Index s = 0; s < kStreams; ++s) sync.push(s, series.sample(t), series.n_channels());
  for (const StreamScore& sc : sync.step())
    expected[static_cast<std::size_t>(sc.stream)].push_back(sc.score);

  AsyncScoringRuntime runtime(rig().detector, rig().normalizer,
                              {.engine = {.max_batch = 8}, .ring_capacity = 64});
  runtime.add_streams(kStreams);
  runtime.calibrate(rig().train);
  runtime.start();
  for (Index t = 0; t < series.length(); ++t)
    for (Index s = 0; s < kStreams; ++s)
      ASSERT_NE(runtime.push(s, series.sample(t), series.n_channels()),
                PushResult::Rejected);
  runtime.close();

  std::vector<std::vector<float>> got(kStreams);
  for (const StreamScore& sc : runtime.drain_scores())
    got[static_cast<std::size_t>(sc.stream)].push_back(sc.score);
  for (Index s = 0; s < kStreams; ++s) {
    ASSERT_EQ(got[static_cast<std::size_t>(s)].size(),
              expected[static_cast<std::size_t>(s)].size());
    EXPECT_EQ(std::memcmp(got[static_cast<std::size_t>(s)].data(),
                          expected[static_cast<std::size_t>(s)].data(),
                          got[static_cast<std::size_t>(s)].size() * sizeof(float)),
              0)
        << "stream " << s;
  }

  const RuntimeTelemetry tel = runtime.telemetry();
  ASSERT_EQ(tel.shards.size(), static_cast<std::size_t>(runtime.n_active_shards()));
  if constexpr (obs::kEnabled) {
    EXPECT_GT(tel.total.round.count, 0U);
    EXPECT_GT(tel.total.drain.count, 0U);
    EXPECT_GT(tel.total.engine.step.count, 0U);
    // Push sampling stamps one enqueue timestamp every kPushSampleEvery
    // pushes per stream; 300 pushes/stream guarantees several.
    EXPECT_GT(tel.total.engine.push_to_score.count, 0U);
    // The merged total is exactly the merge of the per-shard snapshots.
    obs::HistogramSnapshot manual;
    for (const ShardTelemetry& sh : tel.shards) manual.merge(sh.round);
    EXPECT_EQ(manual.count, tel.total.round.count);
    EXPECT_EQ(manual.sum, tel.total.round.sum);
  } else {
    EXPECT_EQ(tel.total.round.count, 0U);
    EXPECT_EQ(tel.total.engine.push_to_score.count, 0U);
  }
}

}  // namespace
}  // namespace varade::serve
