// Edge-platform model tests: device specs against the paper's published idle
// telemetry, roofline estimator behaviour, and the Table 2 orderings.
#include <gtest/gtest.h>

#include "varade/core/model_costs.hpp"
#include "varade/edge/device.hpp"
#include "varade/edge/profiler.hpp"

namespace varade::edge {
namespace {

TEST(DeviceSpec, IdleRowsMatchPaperTable2) {
  const DeviceSpec nx = jetson_xavier_nx();
  EXPECT_NEAR(nx.idle_power_w, 5.851, 1e-6);
  EXPECT_NEAR(nx.idle_cpu_util_pct, 36.465, 1e-6);
  EXPECT_NEAR(nx.idle_gpu_util_pct, 52.100, 1e-6);
  EXPECT_NEAR(nx.idle_ram_mb, 5130.219, 1e-6);
  EXPECT_NEAR(nx.idle_gpu_ram_mb, 537.235, 1e-6);
  EXPECT_EQ(nx.cpu_cores, 6);

  const DeviceSpec orin = jetson_agx_orin();
  EXPECT_NEAR(orin.idle_power_w, 7.522, 1e-6);
  EXPECT_NEAR(orin.idle_cpu_util_pct, 4.875, 1e-6);
  EXPECT_NEAR(orin.idle_gpu_util_pct, 0.0, 1e-6);
  EXPECT_EQ(orin.cpu_cores, 12);
  // Orin is the bigger board in every compute dimension.
  EXPECT_GT(orin.gpu_gflops, nx.gpu_gflops);
  EXPECT_GT(orin.mem_bandwidth_gbs, nx.mem_bandwidth_gbs);
  EXPECT_LT(orin.gpu_dispatch_ms, nx.gpu_dispatch_ms);
}

ModelCost tiny_gpu_model() {
  ModelCost c;
  c.name = "tiny";
  c.flops = 1e6;
  c.param_bytes = 1e6;
  c.activation_bytes = 1e5;
  c.n_ops = 10;
  c.runs_on_gpu = true;
  c.parallel_efficiency = 0.8;
  return c;
}

TEST(Profiler, LatencyIncreasesWithEveryCostComponent) {
  const EdgeProfiler profiler(jetson_xavier_nx());
  const ModelCost base = tiny_gpu_model();
  const double base_latency = profiler.estimate(base).latency_ms;

  ModelCost more_ops = base;
  more_ops.n_ops = 50;
  EXPECT_GT(profiler.estimate(more_ops).latency_ms, base_latency);

  ModelCost more_flops = base;
  more_flops.flops = 1e12;
  EXPECT_GT(profiler.estimate(more_flops).latency_ms, base_latency);

  ModelCost more_bytes = base;
  more_bytes.ref_bytes = 1e10;
  EXPECT_GT(profiler.estimate(more_bytes).latency_ms, base_latency);
}

TEST(Profiler, FrequencyIsInverseLatency) {
  const EdgeProfiler profiler(jetson_agx_orin());
  const EstimatedPerformance perf = profiler.estimate(tiny_gpu_model());
  EXPECT_NEAR(perf.inference_hz * perf.latency_ms, 1000.0, 1e-6);
}

TEST(Profiler, PowerAtLeastIdleAndRamAtLeastBaseline) {
  for (const DeviceSpec& spec : {jetson_xavier_nx(), jetson_agx_orin()}) {
    const EdgeProfiler profiler(spec);
    for (bool gpu : {false, true}) {
      ModelCost c = tiny_gpu_model();
      c.runs_on_gpu = gpu;
      const EstimatedPerformance perf = profiler.estimate(c);
      EXPECT_GE(perf.power_w, spec.idle_power_w);
      EXPECT_GE(perf.ram_mb, spec.idle_ram_mb);
      EXPECT_GE(perf.gpu_ram_mb, spec.idle_gpu_ram_mb);
      EXPECT_LE(perf.cpu_util_pct, 100.0);
      EXPECT_LE(perf.gpu_util_pct, 100.0);
    }
  }
}

TEST(Profiler, CpuModelDoesNotTouchGpu) {
  const DeviceSpec spec = jetson_agx_orin();
  const EdgeProfiler profiler(spec);
  ModelCost c = tiny_gpu_model();
  c.runs_on_gpu = false;
  const EstimatedPerformance perf = profiler.estimate(c);
  EXPECT_DOUBLE_EQ(perf.gpu_util_pct, spec.idle_gpu_util_pct);
  EXPECT_DOUBLE_EQ(perf.gpu_ram_mb, spec.idle_gpu_ram_mb);
}

TEST(Profiler, SpinningRecurrentModelDrawsMorePower) {
  const EdgeProfiler profiler(jetson_xavier_nx());
  ModelCost plain = tiny_gpu_model();
  ModelCost spinning = plain;
  spinning.gpu_resident_spin = true;
  EXPECT_GT(profiler.estimate(spinning).power_w, profiler.estimate(plain).power_w);
  EXPECT_GT(profiler.estimate(spinning).gpu_util_pct, 90.0);
}

TEST(Profiler, RejectsInvalidCosts) {
  const EdgeProfiler profiler(jetson_xavier_nx());
  ModelCost c = tiny_gpu_model();
  c.flops = -1.0;
  EXPECT_THROW(profiler.estimate(c), Error);
  c = tiny_gpu_model();
  c.parallel_efficiency = 0.0;
  EXPECT_THROW(profiler.estimate(c), Error);
  c = tiny_gpu_model();
  c.n_ops = 0;
  EXPECT_THROW(profiler.estimate(c), Error);
}

// --- the reproduction targets: Table 2 orderings ----------------------------

struct PaperRow {
  const char* name;
  double nx_hz;
  double orin_hz;
};

// Published inference frequencies (paper Table 2).
constexpr PaperRow kPaperRows[] = {
    {"AR-LSTM", 5.200, 8.687},  {"GBRF", 20.575, 44.128},          {"AE", 2.247, 4.284},
    {"kNN", 1.116, 4.754},      {"Isolation Forest", 4.568, 10.732}, {"VARADE", 14.937, 26.461},
};

TEST(PaperCosts, FrequencyOrderingMatchesTable2OnBothBoards) {
  for (const DeviceSpec& spec : {jetson_xavier_nx(), jetson_agx_orin()}) {
    const bool is_nx = spec.name == "Jetson Xavier NX";
    const EdgeProfiler profiler(spec);
    std::vector<std::pair<double, double>> pairs;  // (paper hz, estimated hz)
    for (const PaperRow& row : kPaperRows) {
      const EstimatedPerformance perf = profiler.estimate(core::paper_model_cost(row.name));
      pairs.push_back({is_nx ? row.nx_hz : row.orin_hz, perf.inference_hz});
    }
    // Every pairwise ordering of the paper must be preserved.
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      for (std::size_t j = i + 1; j < pairs.size(); ++j) {
        const bool paper_faster = pairs[i].first > pairs[j].first;
        const bool est_faster = pairs[i].second > pairs[j].second;
        EXPECT_EQ(paper_faster, est_faster)
            << spec.name << ": ordering of " << kPaperRows[i].name << " vs "
            << kPaperRows[j].name;
      }
    }
  }
}

TEST(PaperCosts, FrequenciesWithinFactorTwoOfTable2) {
  for (const DeviceSpec& spec : {jetson_xavier_nx(), jetson_agx_orin()}) {
    const bool is_nx = spec.name == "Jetson Xavier NX";
    const EdgeProfiler profiler(spec);
    for (const PaperRow& row : kPaperRows) {
      const double est = profiler.estimate(core::paper_model_cost(row.name)).inference_hz;
      const double paper = is_nx ? row.nx_hz : row.orin_hz;
      EXPECT_GT(est, paper / 2.0) << spec.name << " " << row.name;
      EXPECT_LT(est, paper * 2.0) << spec.name << " " << row.name;
    }
  }
}

TEST(PaperCosts, OrinIsFasterThanXavierForEveryModel) {
  const EdgeProfiler nx(jetson_xavier_nx());
  const EdgeProfiler orin(jetson_agx_orin());
  for (const auto& cost : core::paper_model_costs()) {
    EXPECT_GT(orin.estimate(cost).inference_hz, nx.estimate(cost).inference_hz) << cost.name;
  }
}

TEST(PaperCosts, ArLstmDrawsTheMostPowerAmongGpuModels) {
  // Paper section 4.4: AR-LSTM's high GPU usage leads to the highest power.
  const EdgeProfiler nx(jetson_xavier_nx());
  const double lstm_power = nx.estimate(core::paper_model_cost("AR-LSTM")).power_w;
  for (const char* other : {"VARADE", "AE", "GBRF", "Isolation Forest"}) {
    EXPECT_GT(lstm_power, nx.estimate(core::paper_model_cost(other)).power_w) << other;
  }
}

TEST(PaperCosts, VaradeUsesTheMostGpuMemory) {
  // Table 2: VARADE has the largest GPU RAM footprint (1005 MB on the NX).
  const EdgeProfiler nx(jetson_xavier_nx());
  const double varade = nx.estimate(core::paper_model_cost("VARADE")).gpu_ram_mb;
  for (const char* other : {"AR-LSTM", "AE", "GBRF", "kNN", "Isolation Forest"}) {
    EXPECT_GE(varade, nx.estimate(core::paper_model_cost(other)).gpu_ram_mb) << other;
  }
}

TEST(PaperCosts, KnnBurnsCpuNotGpu) {
  // Paper: kNN runs on the CPU with ~92% utilisation on both boards.
  for (const DeviceSpec& spec : {jetson_xavier_nx(), jetson_agx_orin()}) {
    const EdgeProfiler profiler(spec);
    const EstimatedPerformance perf = profiler.estimate(core::paper_model_cost("kNN"));
    EXPECT_GT(perf.cpu_util_pct, 80.0) << spec.name;
    EXPECT_DOUBLE_EQ(perf.gpu_util_pct, spec.idle_gpu_util_pct);
  }
}

TEST(PaperCosts, UnknownDetectorNameThrows) {
  EXPECT_THROW(core::paper_model_cost("NoSuchModel"), Error);
  EXPECT_THROW(core::paper_model_cost("VARADE", 0), Error);
}

TEST(PaperCosts, AllSixDetectorsPresent) {
  const auto costs = core::paper_model_costs();
  EXPECT_EQ(costs.size(), 6U);
  for (const auto& c : costs) {
    EXPECT_GT(c.flops, 0.0);
    EXPECT_GE(c.param_bytes, 0.0);
    EXPECT_GE(c.n_ops, 1);
  }
}

}  // namespace
}  // namespace varade::edge
