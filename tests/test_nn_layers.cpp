// Layer tests: exact forward semantics plus finite-difference gradient checks
// over parameterised shape sweeps.
#include <gtest/gtest.h>

#include "gradcheck.hpp"
#include "varade/nn/layers.hpp"

namespace varade {
namespace {

using nn::Conv1d;
using nn::ConvTranspose1d;
using nn::Flatten;
using nn::LastTimeStep;
using nn::Linear;
using nn::ReLU;
using nn::ResidualBlock1d;
using nn::Tanh;

TEST(Linear, ForwardMatchesManualComputation) {
  Rng rng(1);
  Linear layer(2, 3, rng);
  layer.weight().value = Tensor::matrix({{1, 0}, {0, 1}, {1, 1}});
  layer.bias().value = Tensor::vector({0.5F, -0.5F, 0});
  const Tensor x = Tensor::matrix({{2, 3}});
  const Tensor y = layer.forward(x);
  EXPECT_TRUE(allclose(y, Tensor::matrix({{2.5F, 2.5F, 5}})));
}

TEST(Linear, RejectsWrongInputShape) {
  Rng rng(1);
  Linear layer(4, 2, rng);
  EXPECT_THROW(layer.forward(Tensor({1, 3})), Error);
  EXPECT_THROW(layer.forward(Tensor({4})), Error);
}

TEST(Linear, OutputShapeAndFlops) {
  Rng rng(1);
  Linear layer(8, 5, rng);
  EXPECT_EQ(layer.output_shape({8}), (Shape{5}));
  EXPECT_EQ(layer.flops({8}), 2 * 8 * 5);
  EXPECT_EQ(layer.num_params(), 8 * 5 + 5);
}

TEST(ReLU, ForwardAndBackward) {
  ReLU relu;
  const Tensor x = Tensor::vector({-1, 0, 2});
  EXPECT_EQ(relu.forward(x), Tensor::vector({0, 0, 2}));
  const Tensor g = relu.backward(Tensor::vector({1, 1, 1}));
  EXPECT_EQ(g, Tensor::vector({0, 0, 1}));
}

TEST(Tanh, ForwardAndBackward) {
  Tanh tanh_layer;
  const Tensor x = Tensor::vector({0.0F, 1.0F});
  const Tensor y = tanh_layer.forward(x);
  EXPECT_NEAR(y.at(0), 0.0F, 1e-6);
  EXPECT_NEAR(y.at(1), std::tanh(1.0F), 1e-6);
  const Tensor g = tanh_layer.backward(Tensor::vector({1, 1}));
  EXPECT_NEAR(g.at(0), 1.0F, 1e-6);  // 1 - tanh(0)^2
}

TEST(Conv1d, OutLengthGeometry) {
  Rng rng(1);
  Conv1d c(1, 1, 2, 2, 0, rng);
  EXPECT_EQ(c.out_length(8), 4);
  EXPECT_EQ(c.out_length(9), 4);
  Conv1d same(1, 1, 3, 1, 1, rng);
  EXPECT_EQ(same.out_length(8), 8);
  EXPECT_THROW(Conv1d(1, 1, 4, 1, 0, rng).out_length(2), Error);
}

TEST(Conv1d, ForwardMatchesManualComputation) {
  Rng rng(1);
  Conv1d c(1, 1, 2, 2, 0, rng);
  c.parameters()[0]->value = Tensor({1, 1, 2}, std::vector<float>{1.0F, -1.0F});
  c.parameters()[1]->value = Tensor::vector({0.5F});
  const Tensor x({1, 1, 4}, std::vector<float>{1, 2, 3, 5});
  const Tensor y = c.forward(x);
  EXPECT_EQ(y.shape(), (Shape{1, 1, 2}));
  EXPECT_FLOAT_EQ(y[0], 1.0F - 2.0F + 0.5F);
  EXPECT_FLOAT_EQ(y[1], 3.0F - 5.0F + 0.5F);
}

TEST(Conv1d, PaddingPreservesLength) {
  Rng rng(2);
  Conv1d c(2, 3, 3, 1, 1, rng);
  const Tensor x = Tensor::randn({2, 2, 6}, rng);
  EXPECT_EQ(c.forward(x).shape(), (Shape{2, 3, 6}));
}

// forward_inference runs a vectorised kernel (blocked across output steps,
// boundary steps scalar) while forward runs the scalar reference; its
// per-element accumulation order is preserved, so the two must agree bit for
// bit across every geometry the models use — including windows entirely
// inside the padding and lengths that are not multiples of the block size.
TEST(Conv1d, InferenceKernelMatchesForwardBitForBit) {
  struct Geometry {
    Index in_ch, out_ch, kernel, stride, padding, batch, length;
  };
  const std::vector<Geometry> cases = {
      {1, 1, 2, 2, 0, 1, 8},    // VARADE trunk: halving conv, no padding
      {3, 8, 2, 2, 0, 5, 32},   //  - wider, batched
      {3, 4, 2, 1, 0, 2, 24},   // k2/s1: the remaining specialised kernel
      {2, 3, 3, 1, 1, 2, 6},    // AE residual block: same-length conv
      {4, 4, 3, 1, 1, 3, 37},   //  - length not a multiple of the block
      {2, 2, 5, 1, 2, 2, 4},    // kernel wider than half the input
      {1, 2, 3, 2, 3, 2, 3},    // padding > kernel: boundary-only outputs
      {2, 4, 4, 3, 2, 1, 19},   // stride > 1 with padding (strided interior)
  };
  std::uint64_t seed = 7;
  for (const Geometry& g : cases) {
    Rng rng(seed++);
    Conv1d conv(g.in_ch, g.out_ch, g.kernel, g.stride, g.padding, rng);
    const Tensor x = Tensor::randn({g.batch, g.in_ch, g.length}, rng);
    const Tensor ref = conv.forward(x);
    const Tensor fast = conv.forward_inference(x);
    ASSERT_EQ(ref.shape(), fast.shape());
    for (Index i = 0; i < ref.numel(); ++i)
      ASSERT_EQ(ref[i], fast[i]) << "kernel=" << g.kernel << " stride=" << g.stride
                                 << " padding=" << g.padding << " length=" << g.length
                                 << " element " << i;
  }
}

TEST(ConvTranspose1d, ForwardGeometryAndValues) {
  Rng rng(1);
  ConvTranspose1d c(1, 1, 2, 2, rng);
  c.parameters()[0]->value = Tensor({1, 1, 2}, std::vector<float>{1.0F, 2.0F});
  c.parameters()[1]->value = Tensor::vector({0.0F});
  const Tensor x({1, 1, 2}, std::vector<float>{3, 4});
  const Tensor y = c.forward(x);
  EXPECT_EQ(y.shape(), (Shape{1, 1, 4}));
  EXPECT_FLOAT_EQ(y[0], 3.0F);
  EXPECT_FLOAT_EQ(y[1], 6.0F);
  EXPECT_FLOAT_EQ(y[2], 4.0F);
  EXPECT_FLOAT_EQ(y[3], 8.0F);
}

// forward_inference runs a blocked scatter through the kernel dispatch table
// for non-overlapping geometries (stride >= kernel) and falls back to the
// scalar reference otherwise; either way every output element keeps apply()'s
// per-element semantics (including the skip of exactly-zero inputs, common
// behind a ReLU), so the two paths must agree bit for bit. Geometries cover
// the AE decoder's k2/s2 layers, block-size raggedness, exact zeros in the
// input, and an overlapping stride < kernel case.
TEST(ConvTranspose1d, InferenceKernelMatchesForwardBitForBit) {
  struct Geometry {
    Index in_ch, out_ch, kernel, stride, batch, length;
    bool zero_inputs;  // sprinkle exact zeros, as a preceding ReLU would
  };
  const std::vector<Geometry> cases = {
      {8, 4, 2, 2, 1, 8, false},   // AE decoder: k2/s2 upsampling
      {4, 8, 2, 2, 3, 37, true},   //  - batched, ragged length, ReLU zeros
      {1, 1, 2, 2, 1, 4, true},    // tiny, mostly zeros
      {2, 3, 2, 3, 2, 19, true},   // stride > kernel (gaps stay at bias)
      {3, 2, 3, 2, 2, 11, false},  // stride < kernel: overlapping, scalar path
      {2, 2, 1, 1, 1, 8, true},    // k1/s1 degenerate
  };
  std::uint64_t seed = 11;
  for (const Geometry& g : cases) {
    Rng rng(seed++);
    ConvTranspose1d conv(g.in_ch, g.out_ch, g.kernel, g.stride, rng);
    Tensor x = Tensor::randn({g.batch, g.in_ch, g.length}, rng);
    if (g.zero_inputs)
      for (Index i = 0; i < x.numel(); ++i)
        if (rng.bernoulli(0.5)) x[i] = 0.0F;
    const Tensor ref = conv.forward(x);
    const Tensor fast = conv.forward_inference(x);
    ASSERT_EQ(ref.shape(), fast.shape());
    for (Index i = 0; i < ref.numel(); ++i)
      ASSERT_EQ(ref[i], fast[i]) << "kernel=" << g.kernel << " stride=" << g.stride
                                 << " length=" << g.length << " element " << i;
  }
}

TEST(KernelDispatch, ReportsSelectedKernel) {
  const std::string kernel = nn::conv1d_kernel_name();
#if defined(__x86_64__)
  EXPECT_EQ(kernel, __builtin_cpu_supports("avx2") ? "avx2" : "scalar");
#else
  EXPECT_EQ(kernel, "scalar");
#endif
}

TEST(ConvTranspose1d, InvertsConvGeometry) {
  Rng rng(3);
  Conv1d down(4, 8, 2, 2, 0, rng);
  ConvTranspose1d up(8, 4, 2, 2, rng);
  const Tensor x = Tensor::randn({1, 4, 16}, rng);
  const Tensor encoded = down.forward(x);
  EXPECT_EQ(encoded.shape(), (Shape{1, 8, 8}));
  EXPECT_EQ(up.forward(encoded).shape(), x.shape());
}

TEST(Flatten, RoundTrip) {
  Flatten f;
  Rng rng(1);
  const Tensor x = Tensor::randn({2, 3, 4}, rng);
  const Tensor y = f.forward(x);
  EXPECT_EQ(y.shape(), (Shape{2, 12}));
  const Tensor g = f.backward(y);
  EXPECT_TRUE(allclose(g, x));
}

TEST(LastTimeStep, SelectsFinalColumn) {
  LastTimeStep l;
  const Tensor x({1, 2, 3}, std::vector<float>{1, 2, 3, 4, 5, 6});
  const Tensor y = l.forward(x);
  EXPECT_EQ(y.shape(), (Shape{1, 2}));
  EXPECT_FLOAT_EQ(y[0], 3.0F);
  EXPECT_FLOAT_EQ(y[1], 6.0F);
  const Tensor g = l.backward(Tensor::matrix({{1.0F, 2.0F}}));
  EXPECT_FLOAT_EQ(g[2], 1.0F);
  EXPECT_FLOAT_EQ(g[5], 2.0F);
  EXPECT_FLOAT_EQ(g[0], 0.0F);
}

TEST(ResidualBlock1d, PreservesShapeAndSkip) {
  Rng rng(4);
  ResidualBlock1d block(3, rng);
  const Tensor x = Tensor::randn({2, 3, 8}, rng);
  EXPECT_EQ(block.forward(x).shape(), x.shape());
  // Zeroing all conv weights must reduce the block to identity.
  for (nn::Parameter* p : block.parameters()) p->value.zero();
  EXPECT_TRUE(allclose(block.forward(x), x));
}

TEST(Sequential, ChainsShapesAndFlops) {
  Rng rng(5);
  nn::Sequential net;
  net.emplace<Conv1d>(2, 4, 2, 2, 0, rng);
  net.emplace<ReLU>();
  net.emplace<Flatten>();
  net.emplace<Linear>(4 * 4, 3, rng);
  EXPECT_EQ(net.output_shape({2, 8}), (Shape{3}));
  EXPECT_GT(net.flops({2, 8}), 0);
  const Tensor x = Tensor::randn({2, 2, 8}, rng);
  EXPECT_EQ(net.forward(x).shape(), (Shape{2, 3}));
  EXPECT_EQ(net.size(), 4U);
}

// --- finite-difference gradient checks (parameterised shape sweeps) ---------

struct ConvCase {
  Index in_ch;
  Index out_ch;
  Index kernel;
  Index stride;
  Index padding;
  Index length;
  Index batch;
};

class Conv1dGradCheck : public ::testing::TestWithParam<ConvCase> {};

TEST_P(Conv1dGradCheck, MatchesFiniteDifferences) {
  const ConvCase c = GetParam();
  Rng rng(11);
  Conv1d layer(c.in_ch, c.out_ch, c.kernel, c.stride, c.padding, rng);
  const Tensor x = Tensor::randn({c.batch, c.in_ch, c.length}, rng);
  const Shape out = {c.batch, c.out_ch, layer.out_length(c.length)};
  const Tensor projection = Tensor::randn(out, rng);
  testing::check_input_gradient(layer, x, projection);
  testing::check_parameter_gradients(layer, x, projection);
}

INSTANTIATE_TEST_SUITE_P(Shapes, Conv1dGradCheck,
                         ::testing::Values(ConvCase{1, 1, 2, 2, 0, 8, 1},
                                           ConvCase{3, 5, 2, 2, 0, 16, 2},
                                           ConvCase{2, 4, 3, 1, 1, 10, 2},
                                           ConvCase{4, 2, 5, 2, 2, 12, 1},
                                           ConvCase{2, 2, 1, 1, 0, 6, 3}));

struct TransposeCase {
  Index in_ch;
  Index out_ch;
  Index kernel;
  Index stride;
  Index length;
  Index batch;
};

class ConvTranspose1dGradCheck : public ::testing::TestWithParam<TransposeCase> {};

TEST_P(ConvTranspose1dGradCheck, MatchesFiniteDifferences) {
  const TransposeCase c = GetParam();
  Rng rng(13);
  ConvTranspose1d layer(c.in_ch, c.out_ch, c.kernel, c.stride, rng);
  const Tensor x = Tensor::randn({c.batch, c.in_ch, c.length}, rng);
  const Shape out = {c.batch, c.out_ch, (c.length - 1) * c.stride + c.kernel};
  const Tensor projection = Tensor::randn(out, rng);
  testing::check_input_gradient(layer, x, projection);
  testing::check_parameter_gradients(layer, x, projection);
}

INSTANTIATE_TEST_SUITE_P(Shapes, ConvTranspose1dGradCheck,
                         ::testing::Values(TransposeCase{1, 1, 2, 2, 4, 1},
                                           TransposeCase{4, 2, 2, 2, 8, 2},
                                           TransposeCase{2, 3, 3, 2, 5, 2}));

struct LinearCase {
  Index in;
  Index out;
  Index batch;
};

class LinearGradCheck : public ::testing::TestWithParam<LinearCase> {};

TEST_P(LinearGradCheck, MatchesFiniteDifferences) {
  const LinearCase c = GetParam();
  Rng rng(17);
  Linear layer(c.in, c.out, rng);
  const Tensor x = Tensor::randn({c.batch, c.in}, rng);
  const Tensor projection = Tensor::randn({c.batch, c.out}, rng);
  testing::check_input_gradient(layer, x, projection);
  testing::check_parameter_gradients(layer, x, projection);
}

INSTANTIATE_TEST_SUITE_P(Shapes, LinearGradCheck,
                         ::testing::Values(LinearCase{1, 1, 1}, LinearCase{4, 7, 2},
                                           LinearCase{16, 3, 5}));

TEST(ResidualBlock1dGrad, MatchesFiniteDifferences) {
  Rng rng(19);
  ResidualBlock1d block(2, rng);
  // Zero-initialised biases can land inner conv outputs exactly on the ReLU
  // kink (all taps zeroed by the preceding ReLU), where the loss is not
  // differentiable and finite differences measure the average of the two
  // one-sided slopes. Nudge the biases off the kink before checking.
  for (nn::Parameter* p : block.parameters())
    if (p->name == "bias")
      for (Index i = 0; i < p->value.numel(); ++i) p->value[i] = rng.normal(0.0F, 0.05F);
  const Tensor x = Tensor::randn({2, 2, 6}, rng);
  const Tensor projection = Tensor::randn({2, 2, 6}, rng);
  // Small step: larger ones cross ReLU kinks inside the two-conv composition.
  testing::check_input_gradient(block, x, projection, 1e-3F, 2e-2F);
  testing::check_parameter_gradients(block, x, projection, 1e-3F, 2e-2F);
}

TEST(SequentialGrad, MatchesFiniteDifferences) {
  Rng rng(23);
  nn::Sequential net;
  net.emplace<Conv1d>(2, 3, 2, 2, 0, rng);
  net.emplace<ReLU>();
  net.emplace<Flatten>();
  net.emplace<Linear>(3 * 4, 2, rng);
  const Tensor x = Tensor::randn({2, 2, 8}, rng);
  const Tensor projection = Tensor::randn({2, 2}, rng);
  testing::check_input_gradient(net, x, projection);
  testing::check_parameter_gradients(net, x, projection);
}

}  // namespace
}  // namespace varade
