// Optimizer, gradient clipping and serialization tests.
#include <gtest/gtest.h>

#include <sstream>

#include "varade/nn/layers.hpp"
#include "varade/nn/loss.hpp"
#include "varade/nn/optimizer.hpp"
#include "varade/nn/serialize.hpp"

namespace varade {
namespace {

// Minimal 1-parameter quadratic problem: minimise (w - 3)^2.
struct Quadratic {
  nn::Parameter w{"w", Tensor::vector({0.0F})};

  float loss_and_grad() {
    const float diff = w.value[0] - 3.0F;
    w.grad[0] = 2.0F * diff;
    return diff * diff;
  }
};

TEST(Sgd, ConvergesOnQuadratic) {
  Quadratic q;
  nn::Sgd opt(0.1F);
  for (int i = 0; i < 100; ++i) {
    q.loss_and_grad();
    opt.step({&q.w});
  }
  EXPECT_NEAR(q.w.value[0], 3.0F, 1e-4);
}

TEST(Sgd, MomentumAcceleratesDescent) {
  Quadratic plain;
  Quadratic momentum;
  nn::Sgd opt_plain(0.01F);
  nn::Sgd opt_momentum(0.01F, 0.9F);
  for (int i = 0; i < 30; ++i) {
    plain.loss_and_grad();
    opt_plain.step({&plain.w});
    momentum.loss_and_grad();
    opt_momentum.step({&momentum.w});
  }
  EXPECT_GT(momentum.w.value[0], plain.w.value[0]);  // closer to 3
}

TEST(Sgd, RejectsBadHyperparameters) {
  EXPECT_THROW(nn::Sgd(0.0F), Error);
  EXPECT_THROW(nn::Sgd(0.1F, 1.0F), Error);
  EXPECT_THROW(nn::Sgd(0.1F, -0.1F), Error);
}

TEST(Adam, ConvergesOnQuadratic) {
  Quadratic q;
  nn::Adam opt(0.1F);
  for (int i = 0; i < 300; ++i) {
    q.loss_and_grad();
    opt.step({&q.w});
  }
  EXPECT_NEAR(q.w.value[0], 3.0F, 1e-2);
}

TEST(Adam, FirstStepIsLearningRateSized) {
  // With bias correction, the first Adam step is ~lr * sign(grad).
  Quadratic q;
  nn::Adam opt(0.5F);
  q.loss_and_grad();
  opt.step({&q.w});
  EXPECT_NEAR(q.w.value[0], 0.5F, 1e-3);
}

TEST(Adam, RejectsBadHyperparameters) {
  EXPECT_THROW(nn::Adam(-1.0F), Error);
  EXPECT_THROW(nn::Adam(0.1F, 1.0F), Error);
  EXPECT_THROW(nn::Adam(0.1F, 0.9F, 1.5F), Error);
}

TEST(ClipGradNorm, ScalesDownOnlyWhenAboveLimit) {
  nn::Parameter a{"a", Tensor::vector({0.0F, 0.0F})};
  a.grad = Tensor::vector({3.0F, 4.0F});  // norm 5
  const float norm = nn::clip_grad_norm({&a}, 10.0F);
  EXPECT_NEAR(norm, 5.0F, 1e-5);
  EXPECT_NEAR(a.grad[0], 3.0F, 1e-6);  // untouched

  const float norm2 = nn::clip_grad_norm({&a}, 1.0F);
  EXPECT_NEAR(norm2, 5.0F, 1e-5);
  EXPECT_NEAR(a.grad.norm(), 1.0F, 1e-5);  // rescaled to the limit
}

TEST(ClipGradNorm, GlobalAcrossParameters) {
  nn::Parameter a{"a", Tensor::vector({0.0F})};
  nn::Parameter b{"b", Tensor::vector({0.0F})};
  a.grad = Tensor::vector({3.0F});
  b.grad = Tensor::vector({4.0F});
  nn::clip_grad_norm({&a, &b}, 1.0F);
  const float total = std::sqrt(a.grad[0] * a.grad[0] + b.grad[0] * b.grad[0]);
  EXPECT_NEAR(total, 1.0F, 1e-5);
}

TEST(TrainingLoop, LinearRegressionEndToEnd) {
  // Fit y = 2x - 1 with a Linear layer and Adam.
  Rng rng(42);
  nn::Linear model(1, 1, rng);
  nn::Adam opt(0.05F);
  Tensor x({16, 1});
  Tensor y({16, 1});
  for (Index i = 0; i < 16; ++i) {
    x[i] = static_cast<float>(i) / 8.0F - 1.0F;
    y[i] = 2.0F * x[i] - 1.0F;
  }
  float final_loss = 1e9F;
  for (int epoch = 0; epoch < 400; ++epoch) {
    model.zero_grad();
    const Tensor pred = model.forward(x);
    const nn::LossResult loss = nn::mse_loss(pred, y);
    model.backward(loss.grad);
    opt.step(model.parameters());
    final_loss = loss.value;
  }
  EXPECT_LT(final_loss, 1e-4F);
  EXPECT_NEAR(model.weight().value[0], 2.0F, 0.05F);
  EXPECT_NEAR(model.bias().value[0], -1.0F, 0.05F);
}

TEST(Serialize, RoundTripRestoresWeights) {
  Rng rng(7);
  nn::Sequential net;
  net.emplace<nn::Linear>(3, 4, rng);
  net.emplace<nn::ReLU>();
  net.emplace<nn::Linear>(4, 2, rng);

  std::stringstream buffer;
  nn::save_weights(net, buffer);

  // Perturb, then restore.
  for (nn::Parameter* p : net.parameters()) p->value += 1.0F;
  const Tensor x = Tensor::randn({2, 3}, rng);
  nn::load_weights(net, buffer);

  nn::Sequential ref;
  Rng rng2(7);
  ref.emplace<nn::Linear>(3, 4, rng2);
  ref.emplace<nn::ReLU>();
  ref.emplace<nn::Linear>(4, 2, rng2);
  EXPECT_TRUE(allclose(net.forward(x), ref.forward(x), 1e-6F));
}

TEST(Serialize, RejectsCorruptedStream) {
  Rng rng(7);
  nn::Sequential net;
  net.emplace<nn::Linear>(2, 2, rng);

  std::stringstream buffer;
  nn::save_weights(net, buffer);
  std::string data = buffer.str();

  // Bad magic.
  std::string bad = data;
  bad[0] = 'X';
  std::stringstream bad_stream(bad);
  EXPECT_THROW(nn::load_weights(net, bad_stream), Error);

  // Truncated.
  std::stringstream truncated(data.substr(0, data.size() / 2));
  EXPECT_THROW(nn::load_weights(net, truncated), Error);
}

TEST(Serialize, RejectsArchitectureMismatch) {
  Rng rng(7);
  nn::Sequential small;
  small.emplace<nn::Linear>(2, 2, rng);
  std::stringstream buffer;
  nn::save_weights(small, buffer);

  nn::Sequential bigger;
  bigger.emplace<nn::Linear>(3, 2, rng);
  EXPECT_THROW(nn::load_weights(bigger, buffer), Error);
}

TEST(Serialize, FileRoundTrip) {
  Rng rng(9);
  nn::Sequential net;
  net.emplace<nn::Linear>(2, 3, rng);
  const std::string path = ::testing::TempDir() + "/varade_weights.bin";
  nn::save_weights(net, path);
  const Tensor before = net.parameters()[0]->value;
  net.parameters()[0]->value += 5.0F;
  nn::load_weights(net, path);
  EXPECT_TRUE(allclose(net.parameters()[0]->value, before));
  EXPECT_THROW(nn::load_weights(net, "/nonexistent/path.bin"), Error);
}

}  // namespace
}  // namespace varade
