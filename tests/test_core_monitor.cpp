// Tests for the online monitor (alarm calibration, debouncing, event log)
// and VARADE detector persistence.
#include <gtest/gtest.h>

#include <cmath>
#include <fstream>

#include "varade/core/baselines/knn.hpp"
#include "varade/core/monitor.hpp"
#include "varade/core/varade.hpp"

namespace varade::core {
namespace {

data::MultivariateSeries make_sine(Index length, bool planted, std::uint64_t seed) {
  Rng rng(seed);
  data::MultivariateSeries s(3);
  std::vector<float> row(3);
  for (Index t = 0; t < length; ++t) {
    const bool anomalous = planted && (t % 250) >= 200 && (t % 250) < 215;
    for (Index c = 0; c < 3; ++c) {
      row[static_cast<std::size_t>(c)] =
          std::sin(0.05F * static_cast<float>(t) + static_cast<float>(c)) +
          rng.normal(0.0F, anomalous ? 0.9F : 0.03F);
    }
    s.append(row, anomalous ? 1 : 0);
  }
  return s;
}

struct MonitorRig {
  data::MultivariateSeries train_raw = make_sine(1000, false, 1);
  data::MinMaxNormalizer normalizer;
  KnnDetector detector{{.knn = {.k = 3}, .max_reference_points = 400}};
  data::MultivariateSeries train;

  MonitorRig() {
    normalizer.fit(train_raw);
    train = normalizer.transform(train_raw);
    detector.fit(train);
  }
};

TEST(OnlineMonitor, RequiresFittedComponents) {
  MonitorRig rig;
  KnnDetector unfitted;
  EXPECT_THROW(OnlineMonitor(unfitted, rig.normalizer), Error);
  data::MinMaxNormalizer blank;
  EXPECT_THROW(OnlineMonitor(rig.detector, blank), Error);
  EXPECT_THROW(OnlineMonitor(rig.detector, rig.normalizer, {.threshold_quantile = 1.5}), Error);
  EXPECT_THROW(OnlineMonitor(rig.detector, rig.normalizer, {.debounce_samples = 0}), Error);
}

TEST(OnlineMonitor, PushBeforeCalibrationThrows) {
  MonitorRig rig;
  OnlineMonitor monitor(rig.detector, rig.normalizer);
  std::vector<float> sample(3, 0.0F);
  EXPECT_THROW(monitor.push(sample), Error);
}

TEST(OnlineMonitor, CalibrationSetsFiniteThreshold) {
  MonitorRig rig;
  OnlineMonitor monitor(rig.detector, rig.normalizer);
  monitor.calibrate(rig.train);
  EXPECT_TRUE(monitor.calibrated());
  EXPECT_TRUE(std::isfinite(monitor.threshold()));
  EXPECT_GT(monitor.threshold(), 0.0F);
}

TEST(OnlineMonitor, QuietStreamRaisesFewAlarms) {
  MonitorRig rig;
  OnlineMonitor monitor(rig.detector, rig.normalizer, {.threshold_quantile = 0.999});
  monitor.calibrate(rig.train);
  const auto quiet = make_sine(800, false, 2);
  for (Index t = 0; t < quiet.length(); ++t) monitor.push(quiet.sample(t));
  EXPECT_LE(monitor.events().size(), 2U);  // ~0.1% false-alarm budget
  EXPECT_EQ(monitor.samples_seen(), 800);
}

TEST(OnlineMonitor, DetectsPlantedBursts) {
  MonitorRig rig;
  OnlineMonitor monitor(rig.detector, rig.normalizer,
                        {.threshold_quantile = 0.995, .debounce_samples = 2});
  monitor.calibrate(rig.train);
  const auto noisy = make_sine(1000, true, 3);
  long events_fired = 0;
  monitor.on_event([&](const AnomalyEvent&) { ++events_fired; });
  for (Index t = 0; t < noisy.length(); ++t) monitor.push(noisy.sample(t));
  // Bursts at samples 200-215, 450-465, 700-715, 950-965: expect most caught.
  EXPECT_GE(static_cast<long>(monitor.events().size()), 3);
  EXPECT_EQ(events_fired, static_cast<long>(monitor.events().size()));
  // Event onsets must fall near the planted bursts (within holdoff slack).
  for (const AnomalyEvent& ev : monitor.events()) {
    const Index phase = ev.onset_sample % 250;
    EXPECT_GE(phase, 195) << "event onset " << ev.onset_sample;
    EXPECT_LE(phase, 230) << "event onset " << ev.onset_sample;
    EXPECT_GT(ev.peak_score, monitor.threshold());
    EXPECT_GE(ev.last_sample, ev.onset_sample);
  }
}

TEST(OnlineMonitor, DebounceSuppressesSingleSpikes) {
  MonitorRig rig;
  OnlineMonitor strict(rig.detector, rig.normalizer,
                       {.threshold_quantile = 0.9, .debounce_samples = 50});
  strict.calibrate(rig.train);
  const auto noisy = make_sine(600, true, 4);
  for (Index t = 0; t < noisy.length(); ++t) strict.push(noisy.sample(t));
  // 50 consecutive exceedances never happen for 15-sample bursts.
  EXPECT_TRUE(strict.events().empty());
}

TEST(OnlineMonitor, WarmupReturnsNegativeScores) {
  MonitorRig rig;
  OnlineMonitor monitor(rig.detector, rig.normalizer);
  monitor.set_threshold(1.0F);
  const auto quiet = make_sine(10, false, 5);
  // kNN's context window is 1, so only the very first push is warm-up.
  EXPECT_LT(monitor.push(quiet.sample(0)), 0.0F);
  EXPECT_GE(monitor.push(quiet.sample(1)), 0.0F);
}

TEST(VaradePersistence, SaveLoadRoundTripPreservesScores) {
  const auto train_raw = make_sine(800, false, 6);
  data::MinMaxNormalizer norm;
  norm.fit(train_raw);
  const auto train = norm.transform(train_raw);

  VaradeConfig cfg;
  cfg.window = 32;
  cfg.base_channels = 8;
  cfg.epochs = 2;
  cfg.learning_rate = 1e-3F;
  cfg.train_stride = 4;
  VaradeDetector original(cfg);
  original.fit(train);

  const std::string path = ::testing::TempDir() + "/varade_detector.bin";
  original.save(path);

  VaradeDetector restored;
  restored.load(path);
  ASSERT_TRUE(restored.fitted());
  EXPECT_EQ(restored.config().window, 32);
  EXPECT_EQ(restored.config().base_channels, 8);

  Rng rng(7);
  for (int trial = 0; trial < 5; ++trial) {
    const Tensor ctx = Tensor::randn({3, 32}, rng);
    EXPECT_FLOAT_EQ(original.variance_score(ctx), restored.variance_score(ctx));
  }
}

TEST(VaradePersistence, RejectsGarbageAndUnfitted) {
  VaradeDetector det;
  EXPECT_THROW(det.save(::testing::TempDir() + "/x.bin"), Error);  // unfitted
  const std::string path = ::testing::TempDir() + "/garbage.bin";
  {
    std::ofstream f(path, std::ios::binary);
    f << "this is not a detector";
  }
  EXPECT_THROW(det.load(path), Error);
  EXPECT_THROW(det.load("/nonexistent/detector.bin"), Error);
}

TEST(VaradeWidth, FlatTrunkHasFewerParamsThanDoubling) {
  VaradeConfig doubling;
  doubling.window = 64;
  doubling.base_channels = 16;
  VaradeConfig flat = doubling;
  flat.channel_doubling = false;

  Rng rng1(1);
  Rng rng2(1);
  VaradeModel m_doubling(10, doubling, rng1);
  VaradeModel m_flat(10, flat, rng2);
  EXPECT_GT(m_doubling.num_params(), m_flat.num_params());
  EXPECT_GT(m_doubling.flops(), m_flat.flops());
  // Both still produce valid heads.
  const Tensor x = Tensor::randn({1, 10, 64}, rng1);
  EXPECT_EQ(m_flat.forward(x).mu.shape(), (Shape{1, 10}));
}

}  // namespace
}  // namespace varade::core
