// Tests for the sharded async serving runtime: the static stream -> shard
// partition, the determinism contract at every shard count, and the
// per-shard scorer behaviour (independent idle backoff, shard-aware close).
//
// The headline contract: AsyncRuntimeConfig::n_shards partitions the stream
// space across N scorer threads, each driving its own clone_fitted()
// engine — and for ANY shard count every stream's score/event sequence is
// bit-identical to the synchronous ScoringEngine fed the same samples,
// because a stream is owned by exactly one shard, rings preserve producer
// order, replicas are bit-identical clones, and score_batch == score_step.
// This binary carries the `concurrency` label and runs under ThreadSanitizer
// in CI (`ci.sh --tsan`).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "varade/core/varade.hpp"
#include "varade/serve/runtime.hpp"

namespace varade::serve {
namespace {

data::MultivariateSeries make_sine(Index length, bool planted, std::uint64_t seed) {
  Rng rng(seed);
  data::MultivariateSeries s(3);
  std::vector<float> row(3);
  for (Index t = 0; t < length; ++t) {
    const bool anomalous = planted && (t % 120) >= 90 && (t % 120) < 100;
    for (Index c = 0; c < 3; ++c) {
      row[static_cast<std::size_t>(c)] =
          std::sin(0.05F * static_cast<float>(t) + static_cast<float>(c)) +
          rng.normal(0.0F, anomalous ? 0.9F : 0.03F);
    }
    s.append(row, anomalous ? 1 : 0);
  }
  return s;
}

/// One tiny fitted VARADE shared by every test in this binary (fitting
/// dominates; the runtime only reads the model). Deliberately small so the
/// whole binary stays fast under ThreadSanitizer's ~10x slowdown.
struct ShardRig {
  data::MultivariateSeries train_raw = make_sine(400, false, 1);
  data::MinMaxNormalizer normalizer;
  data::MultivariateSeries train;
  core::VaradeDetector detector;

  ShardRig()
      : detector({.window = 16,
                  .base_channels = 4,
                  .epochs = 1,
                  .learning_rate = 1e-3F,
                  .train_stride = 4}) {
    normalizer.fit(train_raw);
    train = normalizer.transform(train_raw);
    detector.fit(train);
  }
};

ShardRig& rig() {
  static ShardRig* r = new ShardRig();
  return *r;
}

/// Delegating detector whose clone_fitted() stays null: exercises the
/// shared-detector fallback (shards serialise on the borrowed instance).
class NonReplicableDetector : public core::AnomalyDetector {
 public:
  explicit NonReplicableDetector(core::AnomalyDetector& inner) : inner_(&inner) {}
  std::string name() const override { return "NonReplicable(" + inner_->name() + ")"; }
  void fit(const data::MultivariateSeries& train) override { inner_->fit(train); }
  float score_step(const Tensor& context, const Tensor& observed) override {
    return inner_->score_step(context, observed);
  }
  void score_batch(const Tensor& contexts, const Tensor& observed, float* out) override {
    inner_->score_batch(contexts, observed, out);
  }
  Index context_window() const override { return inner_->context_window(); }
  edge::ModelCost cost() const override { return inner_->cost(); }
  bool fitted() const override { return inner_->fitted(); }

 private:
  core::AnomalyDetector* inner_;
};

// ---------------------------------------------------------------------------
// ShardPartition: the one place stream ids are remapped
// ---------------------------------------------------------------------------

TEST(ShardPartition, EveryStreamOwnedByExactlyOneShard) {
  for (const Index n_shards : {1, 2, 3, 4, 7}) {
    const ShardPartition part{n_shards};
    for (const Index n_streams : {0, 1, 2, 5, 16, 33}) {
      std::vector<Index> owned_count(static_cast<std::size_t>(n_shards), 0);
      for (Index s = 0; s < n_streams; ++s) {
        const Index shard = part.shard_of(s);
        ASSERT_GE(shard, 0);
        ASSERT_LT(shard, n_shards);
        // (shard_of, local_of) and global_of are mutual inverses.
        ASSERT_EQ(part.global_of(shard, part.local_of(s)), s);
        ++owned_count[static_cast<std::size_t>(shard)];
      }
      // n_owned() agrees with the explicit count, and the counts cover the
      // stream space exactly once.
      Index total = 0;
      for (Index k = 0; k < n_shards; ++k) {
        EXPECT_EQ(part.n_owned(k, n_streams), owned_count[static_cast<std::size_t>(k)])
            << "shards=" << n_shards << " streams=" << n_streams << " shard=" << k;
        total += part.n_owned(k, n_streams);
      }
      EXPECT_EQ(total, n_streams);
      // Locals are dense per shard: local_of enumerates 0..n_owned-1.
      for (Index k = 0; k < n_shards; ++k)
        for (Index i = 0; i < part.n_owned(k, n_streams); ++i)
          EXPECT_EQ(part.local_of(part.global_of(k, i)), i);
    }
  }
}

TEST(ShardPartition, ClampsAndResolves) {
  const ShardPartition part{4};
  EXPECT_EQ(part.n_active(0), 0);
  EXPECT_EQ(part.n_active(2), 2);  // n_shards > n_streams clamps
  EXPECT_EQ(part.n_active(4), 4);
  EXPECT_EQ(part.n_active(100), 4);
  // With fewer streams than shards, the tail shards own nothing.
  EXPECT_EQ(part.n_owned(3, 2), 0);

  EXPECT_EQ(ShardPartition::resolve(3), 3);
  EXPECT_GE(ShardPartition::resolve(0), 1);  // auto: hardware_concurrency
  EXPECT_THROW(ShardPartition::resolve(-1), Error);
}

TEST(ShardedRuntime, ClampsShardsToStreamsAndReportsStats) {
  AsyncRuntimeConfig cfg;
  cfg.n_shards = 4;
  AsyncScoringRuntime runtime(rig().detector, rig().normalizer, cfg);
  runtime.add_streams(2);
  EXPECT_EQ(runtime.n_shards(), 4);
  EXPECT_EQ(runtime.n_active_shards(), 2);  // shards 2 and 3 stay empty
  EXPECT_EQ(runtime.shard_stats(0).n_streams, 1);
  EXPECT_EQ(runtime.shard_stats(1).n_streams, 1);
  EXPECT_EQ(runtime.shard_stats(2).n_streams, 0);
  EXPECT_EQ(runtime.shard_stats(3).n_streams, 0);
  EXPECT_THROW(runtime.shard_stats(4), Error);
  EXPECT_THROW(runtime.shard_stats(-1), Error);

  runtime.set_threshold(1e9F);
  runtime.start();
  const std::vector<float> sample(3, 0.25F);
  ASSERT_EQ(runtime.push(0, sample), PushResult::Ok);
  ASSERT_EQ(runtime.push(1, sample), PushResult::Ok);
  runtime.close();
  EXPECT_EQ(runtime.samples_seen(0), 1);
  EXPECT_EQ(runtime.samples_seen(1), 1);
  // Empty shards never ran a round.
  EXPECT_EQ(runtime.shard_stats(2).rounds, 0);
  EXPECT_EQ(runtime.shard_stats(3).rounds, 0);

  // The aggregate snapshot spans every stream and every shard (including
  // the empty ones) and sums across the shard map.
  const RuntimeStats total = runtime.stats();
  EXPECT_EQ(total.pushed, 2);
  EXPECT_EQ(total.dropped, 0);
  EXPECT_EQ(total.rejected, 0);
  ASSERT_EQ(total.streams.size(), 2U);
  EXPECT_EQ(total.streams[0].pushed, 1);
  EXPECT_EQ(total.streams[1].pushed, 1);
  ASSERT_EQ(total.shards.size(), 4U);
  EXPECT_EQ(total.rounds, runtime.rounds());
  EXPECT_EQ(total.shards[2].rounds + total.shards[3].rounds, 0);
}

TEST(ShardedRuntime, GlobalStreamIdWordingSurvivesRemapping) {
  AsyncRuntimeConfig cfg;
  cfg.n_shards = 4;
  AsyncScoringRuntime runtime(rig().detector, rig().normalizer, cfg);
  runtime.add_streams(8);
  const std::vector<float> sample(3, 0.0F);
  // Every frontend error reports the *global* id against the *global* range,
  // never a shard-local one (stream 99 would be local 24 of shard 3).
  try {
    runtime.push(99, sample);
    FAIL() << "push(99) did not throw";
  } catch (const Error& e) {
    EXPECT_EQ(std::string(e.what()), "stream id 99 out of range [0, 8)");
  }
  try {
    runtime.events(-3);
    FAIL() << "events(-3) did not throw";
  } catch (const Error& e) {
    EXPECT_EQ(std::string(e.what()), "stream id -3 out of range [0, 8)");
  }
  try {
    runtime.in_alarm(8);
    FAIL() << "in_alarm(8) did not throw";
  } catch (const Error& e) {
    EXPECT_EQ(std::string(e.what()), "stream id 8 out of range [0, 8)");
  }
  EXPECT_THROW(runtime.stats(12), Error);
  EXPECT_THROW(runtime.samples_seen(-1), Error);
}

TEST(ShardedRuntime, ShardEngineAccessorsAndSubsetView) {
  AsyncRuntimeConfig cfg;
  cfg.n_shards = 2;
  AsyncScoringRuntime runtime(rig().detector, rig().normalizer, cfg);
  runtime.add_streams(5);
  runtime.set_threshold(1e9F);
  EXPECT_THROW(runtime.shard_engine(0), Error);  // shards are built by start()
  EXPECT_THROW(runtime.engine(), Error);         // and engine() needs 1 shard
  runtime.start();
  EXPECT_THROW(runtime.shard_engine(0), Error);  // races with the scorers
  runtime.close();
  // Modulo partition: shard 0 owns {0, 2, 4}, shard 1 owns {1, 3}, each
  // under dense local ids that map back to the global ones.
  ASSERT_EQ(runtime.shard_engine(0).n_streams(), 3);
  ASSERT_EQ(runtime.shard_engine(1).n_streams(), 2);
  EXPECT_EQ(runtime.shard_engine(0).global_id(1), 2);
  EXPECT_EQ(runtime.shard_engine(0).global_id(2), 4);
  EXPECT_EQ(runtime.shard_engine(1).global_id(0), 1);
  EXPECT_EQ(runtime.shard_engine(1).global_id(1), 3);
  EXPECT_THROW(runtime.engine(), Error);  // sharded: must name a shard
}

// ---------------------------------------------------------------------------
// The headline contract: bit-parity at every shard count
// ---------------------------------------------------------------------------

struct StreamRun {
  std::vector<float> scores;
  std::vector<core::AnomalyEvent> events;
  bool in_alarm = false;
  Index samples_seen = 0;
};

void expect_same_run(const StreamRun& got, const StreamRun& want, Index stream,
                     const std::string& label) {
  EXPECT_EQ(got.samples_seen, want.samples_seen) << label << " stream " << stream;
  ASSERT_EQ(got.scores.size(), want.scores.size()) << label << " stream " << stream;
  for (std::size_t i = 0; i < got.scores.size(); ++i)
    ASSERT_EQ(got.scores[i], want.scores[i])
        << label << " stream " << stream << " sample " << i;
  ASSERT_EQ(got.events.size(), want.events.size()) << label << " stream " << stream;
  for (std::size_t i = 0; i < got.events.size(); ++i) {
    EXPECT_EQ(got.events[i].onset_sample, want.events[i].onset_sample);
    EXPECT_EQ(got.events[i].last_sample, want.events[i].last_sample);
    EXPECT_EQ(got.events[i].peak_score, want.events[i].peak_score);
  }
  EXPECT_EQ(got.in_alarm, want.in_alarm) << label << " stream " << stream;
}

constexpr Index kParityStreams = 8;
constexpr Index kParitySamples = 200;

std::vector<data::MultivariateSeries> parity_inputs() {
  std::vector<data::MultivariateSeries> inputs;
  for (Index s = 0; s < kParityStreams; ++s)
    inputs.push_back(make_sine(kParitySamples, /*planted=*/s % 2 == 0,
                               300 + static_cast<std::uint64_t>(s)));
  return inputs;
}

float rig_threshold() {
  // One calibration shared by the whole parity matrix (quantile rule on the
  // training series, same value every run).
  static const float threshold =
      core::calibrate_threshold(rig().detector, rig().train, {});
  return threshold;
}

/// Synchronous reference: one ScoringEngine, all samples pushed up front.
std::vector<StreamRun> sync_reference(core::AnomalyDetector& detector,
                                      const std::vector<data::MultivariateSeries>& inputs) {
  std::vector<StreamRun> want(kParityStreams);
  ScoringEngine sync(detector, rig().normalizer, {.n_threads = 1, .max_batch = 8});
  sync.add_streams(kParityStreams);
  sync.set_threshold(rig_threshold());
  for (Index s = 0; s < kParityStreams; ++s)
    for (Index t = 0; t < kParitySamples; ++t)
      sync.push(s, inputs[static_cast<std::size_t>(s)].sample(t), 3);
  for (const StreamScore& r : sync.step())
    want[static_cast<std::size_t>(r.stream)].scores.push_back(r.score);
  for (Index s = 0; s < kParityStreams; ++s) {
    auto& w = want[static_cast<std::size_t>(s)];
    w.events = sync.events(s);
    w.in_alarm = sync.in_alarm(s);
    w.samples_seen = sync.samples_seen(s);
  }
  return want;
}

/// One async run: n_producers threads (one producer per stream), tiny rings
/// so Block backpressure bites, concurrent drain_scores() polling merging
/// the per-shard queues.
std::vector<StreamRun> async_run(core::AnomalyDetector& detector, Index n_shards,
                                 Index n_producers,
                                 const std::vector<data::MultivariateSeries>& inputs,
                                 const std::string& label) {
  AsyncRuntimeConfig cfg;
  cfg.ring_capacity = 16;
  cfg.backpressure = BackpressurePolicy::Block;
  cfg.engine = {.n_threads = 1, .max_batch = 8};
  cfg.n_shards = n_shards;
  AsyncScoringRuntime runtime(detector, rig().normalizer, cfg);
  runtime.add_streams(kParityStreams);
  runtime.set_threshold(rig_threshold());
  runtime.start();

  std::vector<std::thread> producers;
  for (Index p = 0; p < n_producers; ++p) {
    producers.emplace_back([&, p] {
      // Interleave this producer's streams sample by sample so shard rounds
      // mix streams from all producers.
      for (Index t = 0; t < kParitySamples; ++t) {
        for (Index s = p; s < kParityStreams; s += n_producers) {
          const PushResult r = runtime.push(s, inputs[static_cast<std::size_t>(s)].sample(t), 3);
          ASSERT_EQ(r, PushResult::Ok) << label;
        }
      }
    });
  }

  std::vector<StreamRun> got(kParityStreams);
  long received = 0;
  Backoff backoff;
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::minutes(5);
  while (received < kParityStreams * kParitySamples &&
         std::chrono::steady_clock::now() < deadline) {
    const auto batch = runtime.drain_scores();
    if (batch.empty()) {
      backoff.wait();
      continue;
    }
    backoff.reset();
    for (const StreamScore& r : batch) {
      auto& run = got[static_cast<std::size_t>(r.stream)];
      // Per-stream order must be producer order even while shards interleave.
      EXPECT_EQ(r.sample, static_cast<Index>(run.scores.size()))
          << label << " stream " << r.stream << " scored out of order";
      run.scores.push_back(r.score);
      ++received;
    }
  }
  if (received < kParityStreams * kParitySamples) {
    runtime.close();  // unblock any producer stuck in a Block push
    for (std::thread& t : producers) t.join();
    ADD_FAILURE() << label << " score delivery stalled: " << received << "/"
                  << kParityStreams * kParitySamples;
    return got;
  }
  for (std::thread& t : producers) t.join();
  runtime.close();
  EXPECT_TRUE(runtime.drain_scores().empty()) << label;
  EXPECT_EQ(runtime.n_active_shards(),
            std::min<Index>(runtime.n_shards(), kParityStreams))
      << label;
  for (Index s = 0; s < kParityStreams; ++s) {
    auto& g = got[static_cast<std::size_t>(s)];
    g.events = runtime.events(s);
    g.in_alarm = runtime.in_alarm(s);
    g.samples_seen = runtime.samples_seen(s);
  }
  return got;
}

TEST(ShardedRuntime, EveryShardCountMatchesSynchronousEngineBitForBit) {
  const auto inputs = parity_inputs();
  const auto want = sync_reference(rig().detector, inputs);
  // 0 = auto (hardware_concurrency): included so the auto path is exercised
  // whatever this host resolves it to.
  for (const Index n_shards : {1, 2, 4, 0}) {
    for (const Index n_producers : {1, 4}) {
      const std::string label =
          "shards=" + std::to_string(n_shards) + " producers=" + std::to_string(n_producers);
      const auto got = async_run(rig().detector, n_shards, n_producers, inputs, label);
      if (::testing::Test::HasFatalFailure()) return;
      for (Index s = 0; s < kParityStreams; ++s)
        expect_same_run(got[static_cast<std::size_t>(s)], want[static_cast<std::size_t>(s)],
                        s, label);
    }
  }
}

TEST(ShardedRuntime, NonReplicableDetectorFallsBackToSerializedSharing) {
  NonReplicableDetector wrapped(rig().detector);
  ASSERT_EQ(wrapped.clone_fitted(), nullptr);
  const auto inputs = parity_inputs();
  // The reference scores are the inner detector's, shared detector or not.
  const auto want = sync_reference(wrapped, inputs);
  const auto got = async_run(wrapped, /*n_shards=*/2, /*n_producers=*/4, inputs,
                             "non-replicable shards=2");
  if (::testing::Test::HasFatalFailure()) return;
  for (Index s = 0; s < kParityStreams; ++s)
    expect_same_run(got[static_cast<std::size_t>(s)], want[static_cast<std::size_t>(s)], s,
                    "non-replicable shards=2");
}

TEST(ShardedRuntime, SharingFlagReflectsCloneSupport) {
  {
    NonReplicableDetector wrapped(rig().detector);
    AsyncRuntimeConfig cfg;
    cfg.n_shards = 2;
    AsyncScoringRuntime runtime(wrapped, rig().normalizer, cfg);
    runtime.add_streams(2);
    runtime.set_threshold(1e9F);
    runtime.start();
    EXPECT_TRUE(runtime.sharing_detector());
    runtime.close();
  }
  {
    AsyncRuntimeConfig cfg;
    cfg.n_shards = 2;
    AsyncScoringRuntime runtime(rig().detector, rig().normalizer, cfg);
    runtime.add_streams(2);
    runtime.set_threshold(1e9F);
    runtime.start();
    EXPECT_FALSE(runtime.sharing_detector());  // VARADE clones: replicas
    runtime.close();
  }
}

// ---------------------------------------------------------------------------
// Shard-aware close() and independent idle backoff
// ---------------------------------------------------------------------------

TEST(ShardedRuntime, CloseMidStreamDrainsEveryShard) {
  AsyncRuntimeConfig cfg;
  cfg.ring_capacity = 4096;
  cfg.n_shards = 4;
  cfg.engine = {.n_threads = 1, .max_batch = 8};
  AsyncScoringRuntime runtime(rig().detector, rig().normalizer, cfg);
  runtime.add_streams(6);
  runtime.set_threshold(rig_threshold());
  runtime.start();

  // Flood all streams and close immediately: the scorers have certainly not
  // caught up, so close() must drain every shard's backlog before joining.
  const auto series = make_sine(400, true, 8);
  for (Index s = 0; s < 6; ++s)
    for (Index t = 0; t < 400; ++t)
      ASSERT_NE(runtime.push(s, series.sample(t), series.n_channels()), PushResult::Rejected);
  runtime.close();
  runtime.close();  // idempotent across shards

  long total = 0;
  for (Index s = 0; s < 6; ++s) {
    EXPECT_EQ(runtime.stats(s).pushed, 400);
    EXPECT_EQ(runtime.samples_seen(s), 400) << "stream " << s << " not fully drained";
    total += runtime.samples_seen(s);
  }
  const auto scores = runtime.drain_scores();
  EXPECT_EQ(static_cast<long>(scores.size()), total);
  EXPECT_TRUE(runtime.drain_scores().empty());
  EXPECT_GT(runtime.rounds(), 0);
}

TEST(ShardedRuntime, IdleShardSleepsWhileAnotherIsHot) {
  AsyncRuntimeConfig cfg;
  cfg.n_shards = 2;
  cfg.ring_capacity = 64;
  cfg.backpressure = BackpressurePolicy::Block;
  AsyncScoringRuntime runtime(rig().detector, rig().normalizer, cfg);
  runtime.add_streams(2);  // stream 0 -> shard 0, stream 1 -> shard 1
  runtime.set_threshold(1e9F);
  runtime.start();

  // Only stream 0 is hot; shard 1 must fall back to its own nap instead of
  // busy-spinning (its backoff is per shard, not a global scorer nap).
  const auto series = make_sine(600, false, 9);
  for (Index t = 0; t < 600; ++t)
    ASSERT_EQ(runtime.push(0, series.sample(t), series.n_channels()), PushResult::Ok);
  // Give the idle shard time to escalate past its yield rounds into a nap.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  runtime.close();

  EXPECT_EQ(runtime.samples_seen(0), 600);
  EXPECT_EQ(runtime.samples_seen(1), 0);
  const ShardStats hot = runtime.shard_stats(0);
  const ShardStats idle = runtime.shard_stats(1);
  EXPECT_GT(hot.rounds, 0);
  EXPECT_EQ(idle.rounds, 0);      // nothing to score
  EXPECT_GE(idle.naps, 1) << "idle shard never slept: busy-spinning?";
}

}  // namespace
}  // namespace varade::serve
