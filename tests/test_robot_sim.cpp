// Simulator substrate tests: trajectories, dynamics, sensors, anomaly
// injection, and the assembled 86-channel stream.
#include <gtest/gtest.h>

#include <cmath>

#include "varade/robot/anomaly.hpp"
#include "varade/robot/dynamics.hpp"
#include "varade/robot/imu.hpp"
#include "varade/robot/kalman.hpp"
#include "varade/robot/power_meter.hpp"
#include "varade/robot/simulator.hpp"
#include "varade/robot/trajectory.hpp"

namespace varade::robot {
namespace {

TEST(QuinticSegment, BoundaryConditions) {
  const QuinticSegment seg(1.0, 3.0, 2.0);
  EXPECT_NEAR(seg.sample(0.0).position, 1.0, 1e-12);
  EXPECT_NEAR(seg.sample(2.0).position, 3.0, 1e-12);
  EXPECT_NEAR(seg.sample(0.0).velocity, 0.0, 1e-12);
  EXPECT_NEAR(seg.sample(2.0).velocity, 0.0, 1e-12);
  EXPECT_NEAR(seg.sample(0.0).acceleration, 0.0, 1e-12);
  EXPECT_NEAR(seg.sample(2.0).acceleration, 0.0, 1e-12);
  // Midpoint position is the mean; peak velocity = 15/8 * d/T.
  EXPECT_NEAR(seg.sample(1.0).position, 2.0, 1e-12);
  EXPECT_NEAR(seg.sample(1.0).velocity, 15.0 / 8.0 * 2.0 / 2.0, 1e-9);
  EXPECT_THROW(QuinticSegment(0.0, 1.0, 0.0), Error);
}

TEST(QuinticSegment, VelocityConsistentWithPositionDerivative) {
  const QuinticSegment seg(-1.0, 2.0, 1.5);
  const double h = 1e-6;
  for (double t : {0.2, 0.7, 1.1}) {
    const double numeric = (seg.sample(t + h).position - seg.sample(t - h).position) / (2 * h);
    EXPECT_NEAR(seg.sample(t).velocity, numeric, 1e-5);
  }
}

TEST(Action, WaypointInterpolationIsContinuous) {
  std::vector<std::array<double, kNumJoints>> wps(3);
  wps[1].fill(0.5);
  wps[2].fill(0.0);
  Action action(0, wps, {1.0, 1.0});
  EXPECT_NEAR(action.duration(), 2.0, 1e-12);
  // Continuity across the segment boundary.
  const auto before = action.sample(1.0 - 1e-6);
  const auto after = action.sample(1.0 + 1e-6);
  for (int j = 0; j < kNumJoints; ++j)
    EXPECT_NEAR(before[static_cast<std::size_t>(j)].position,
                after[static_cast<std::size_t>(j)].position, 1e-4);
  EXPECT_THROW(Action(0, {wps[0]}, {}), Error);
}

TEST(ActionLibrary, DeterministicAndCyclic) {
  ActionLibrary a(30, 99);
  ActionLibrary b(30, 99);
  EXPECT_EQ(a.size(), 30);
  for (int id : {0, 7, 29}) {
    EXPECT_DOUBLE_EQ(a.action(id).duration(), b.action(id).duration());
    // All actions start and end at home so the cycle is continuous.
    for (int j = 0; j < kNumJoints; ++j) {
      EXPECT_DOUBLE_EQ(a.action(id).start_configuration()[static_cast<std::size_t>(j)], 0.0);
      EXPECT_DOUBLE_EQ(a.action(id).end_configuration()[static_cast<std::size_t>(j)], 0.0);
    }
  }
  ActionLibrary c(30, 100);
  EXPECT_NE(a.action(0).duration(), c.action(0).duration());
  EXPECT_THROW(a.action(30), Error);
}

TEST(ActionSchedule, WrapsCyclically) {
  ActionLibrary lib(3, 1);
  ActionSchedule sched(lib);
  const double cycle = sched.cycle_duration();
  EXPECT_GT(cycle, 0.0);
  const auto c0 = sched.at(0.1);
  EXPECT_EQ(c0.action_id, 0);
  const auto wrapped = sched.at(0.1 + cycle);
  EXPECT_EQ(wrapped.action_id, 0);
  EXPECT_NEAR(wrapped.local_time, c0.local_time, 1e-9);
  // Late in the cycle the last action is running.
  const auto late = sched.at(cycle - 0.01);
  EXPECT_EQ(late.action_id, 2);
  EXPECT_THROW(sched.at(-1.0), Error);
}

TEST(JointDynamics, TracksConstantReference) {
  JointDynamicsConfig cfg;
  cfg.torque_ripple = 0.0;
  cfg.velocity_ripple = 0.0;
  JointDynamics dyn(cfg);
  std::array<double, kNumJoints> start{};
  dyn.reset(start);
  std::array<JointRef, kNumJoints> refs{};
  for (auto& r : refs) r.position = 0.3;
  const std::array<double, kNumJoints> no_torque{};
  for (int step = 0; step < 2000; ++step) dyn.step(refs, no_torque, 0.005);
  for (int j = 0; j < kNumJoints; ++j)
    EXPECT_NEAR(dyn.joints()[static_cast<std::size_t>(j)].position, 0.3, 1e-2);
  EXPECT_LT(dyn.tracking_error(refs), 0.07);
}

TEST(JointDynamics, DisturbanceDeflectsAndRecovers) {
  JointDynamicsConfig cfg;
  cfg.torque_ripple = 0.0;
  cfg.velocity_ripple = 0.0;
  JointDynamics dyn(cfg);
  dyn.reset({});
  std::array<JointRef, kNumJoints> refs{};  // hold zero
  std::array<double, kNumJoints> torque{};

  // Push joint 2 for 0.3 s.
  torque[2] = 8.0;
  double max_deflection = 0.0;
  for (int step = 0; step < 60; ++step) {
    dyn.step(refs, torque, 0.005);
    max_deflection = std::max(max_deflection, std::fabs(dyn.joints()[2].position));
  }
  EXPECT_GT(max_deflection, 0.1);  // compliant arm visibly yields

  // Release and let it ring down.
  torque[2] = 0.0;
  for (int step = 0; step < 2000; ++step) dyn.step(refs, torque, 0.005);
  EXPECT_NEAR(dyn.joints()[2].position, 0.0, 2e-2);
}

TEST(JointDynamics, MechanicalPowerNonNegativeAndRisesUnderLoad) {
  JointDynamics dyn;
  dyn.reset({});
  std::array<JointRef, kNumJoints> refs{};
  std::array<double, kNumJoints> no_torque{};
  dyn.step(refs, no_torque, 0.005);
  EXPECT_GE(dyn.mechanical_power(), 0.0);

  // A moving reference demands power.
  for (auto& r : refs) {
    r.position = 1.0;
    r.velocity = 2.0;
  }
  double peak = 0.0;
  for (int step = 0; step < 100; ++step) {
    dyn.step(refs, no_torque, 0.005);
    peak = std::max(peak, dyn.mechanical_power());
  }
  EXPECT_GT(peak, 1.0);
}

TEST(ScalarKalman, ConvergesToConstantSignal) {
  ScalarKalman filter(0.01, 1.0);
  double estimate = 0.0;
  for (int i = 0; i < 200; ++i) estimate = filter.update(5.0);
  EXPECT_NEAR(estimate, 5.0, 1e-3);
  EXPECT_LT(filter.variance(), 0.2);
}

TEST(ScalarKalman, GainBalancesNoiseRatio) {
  // High process noise / low measurement noise => trust measurements (gain
  // near 1); the reverse => heavy smoothing (small gain).
  ScalarKalman trusting(1.0, 0.01);
  ScalarKalman smoothing(0.01, 1.0);
  for (int i = 0; i < 50; ++i) {
    trusting.update(static_cast<double>(i % 5));
    smoothing.update(static_cast<double>(i % 5));
  }
  EXPECT_GT(trusting.gain(), 0.8);
  EXPECT_LT(smoothing.gain(), 0.2);
}

TEST(ScalarKalman, SmoothsWhiteNoise) {
  Rng rng(3);
  ScalarKalman filter(0.05, 1.0);
  double raw_ss = 0.0;
  double filt_ss = 0.0;
  for (int i = 0; i < 2000; ++i) {
    const double noisy = rng.normal(0.0F, 1.0F);
    const double filtered = filter.update(noisy);
    raw_ss += noisy * noisy;
    filt_ss += filtered * filtered;
  }
  EXPECT_LT(filt_ss, raw_ss * 0.5);  // variance reduced by the filter
  EXPECT_THROW(ScalarKalman(0.0, 1.0), Error);
}

TEST(KalmanBank, FiltersIndependentChannels) {
  KalmanBank bank(3, 0.05, 0.01);
  double values[3] = {1.0, -2.0, 3.0};
  bank.update(values, 3);
  EXPECT_NEAR(values[0], 1.0, 1e-9);  // first sample initialises
  EXPECT_THROW(bank.update(values, 2), Error);
  EXPECT_THROW(KalmanBank(0, 0.1, 0.1), Error);
}

TEST(Imu, GravityVisibleAtRest) {
  ImuConfig cfg;
  cfg.accel_noise_std = 1e-6;
  cfg.accel_bias_std = 0.0;
  cfg.gyro_bias_std = 0.0;
  ImuSensor imu(cfg, 1);
  ImuInput input;  // identity orientation, at rest
  ImuReading r{};
  for (int i = 0; i < 50; ++i) r = imu.sample(input, 0.005);
  EXPECT_NEAR(r.accel[0], 0.0, 1e-2);
  EXPECT_NEAR(r.accel[1], 0.0, 1e-2);
  EXPECT_NEAR(r.accel[2], kGravity, 5e-2);
}

TEST(Imu, QuaternionIsUnitNormAndHemisphereStable) {
  ImuConfig cfg;
  ImuSensor imu(cfg, 2);
  ImuInput input;
  input.orientation = Mat3::rot_z(0.4) * Mat3::rot_x(-0.2);
  for (int i = 0; i < 100; ++i) {
    const ImuReading r = imu.sample(input, 0.005);
    const double norm = std::sqrt(r.quat[0] * r.quat[0] + r.quat[1] * r.quat[1] +
                                  r.quat[2] * r.quat[2] + r.quat[3] * r.quat[3]);
    EXPECT_NEAR(norm, 1.0, 1e-5);
    EXPECT_GE(r.quat[0], 0.0F);  // w kept non-negative
  }
}

TEST(Imu, GyroMeasuresBodyRate) {
  ImuConfig cfg;
  cfg.gyro_noise_std = 1e-6;
  cfg.gyro_bias_std = 0.0;
  ImuSensor imu(cfg, 3);
  ImuInput input;
  input.angular_velocity = {0.0, 0.0, 1.0};  // 1 rad/s about world z
  ImuReading r{};
  for (int i = 0; i < 50; ++i) r = imu.sample(input, 0.005);
  EXPECT_NEAR(r.gyro[2], rad_to_deg(1.0), 0.5);
}

TEST(Imu, TemperatureRisesWithLoad) {
  ImuConfig cfg;
  cfg.temp_noise_std = 0.0;
  ImuSensor imu(cfg, 4);
  ImuInput idle;
  idle.motor_load = 0.0;
  ImuInput loaded;
  loaded.motor_load = 1.0;
  for (int i = 0; i < 400; ++i) imu.sample(loaded, 0.05);
  const float hot = imu.sample(loaded, 0.05).temperature;
  EXPECT_GT(hot, cfg.ambient_temp + 1.0);
}

TEST(PowerMeter, PhysicalRelationsHold) {
  PowerMeterConfig cfg;
  cfg.power_noise_std = 0.0;
  cfg.voltage_noise_std = 0.0;
  cfg.frequency_noise_std = 0.0;
  PowerMeter meter(cfg, 5);
  const PowerReading r = meter.sample(300.0, 0.005);
  // P = V * I * pf.
  EXPECT_NEAR(r.power, r.voltage * r.current * r.power_factor, 1.0);
  // Q = P * tan(phi) with phi = acos(pf).
  EXPECT_NEAR(r.reactive_power,
              r.power * std::tan(std::acos(r.power_factor)), 1.0);
  EXPECT_NEAR(r.phase_angle, rad_to_deg(std::acos(r.power_factor)), 0.1);
  EXPECT_GT(r.power, cfg.idle_power_w);  // includes the idle floor
}

TEST(PowerMeter, EnergyAccumulates) {
  PowerMeterConfig cfg;
  cfg.power_noise_std = 0.0;
  PowerMeter meter(cfg, 6);
  for (int i = 0; i < 720; ++i) meter.sample(840.0, 5.0);  // 1 h at ~1.16 kW
  const double expected_kwh = (cfg.idle_power_w + 840.0 / cfg.motor_efficiency) * 3600.0 / 3.6e6;
  EXPECT_NEAR(meter.energy_kwh(), expected_kwh, 0.05);
  EXPECT_THROW(meter.sample(-1.0, 0.005), Error);
}

TEST(PowerMeter, PowerFactorImprovesWithLoad) {
  PowerMeterConfig cfg;
  cfg.power_noise_std = 0.0;
  PowerMeter meter(cfg, 7);
  const PowerReading idle = meter.sample(0.0, 0.005);
  const PowerReading loaded = meter.sample(700.0, 0.005);
  EXPECT_GT(loaded.power_factor, idle.power_factor);
  EXPECT_LT(loaded.voltage, idle.voltage + 1.0);  // slight sag
}

TEST(CollisionSchedule, EventCountSeparationAndDurations) {
  CollisionScheduleConfig cfg;
  cfg.n_events = 25;
  cfg.experiment_duration = 300.0;
  cfg.seed = 11;
  const CollisionSchedule sched(cfg);
  ASSERT_EQ(sched.size(), 25U);
  const auto& events = sched.events();
  for (std::size_t i = 1; i < events.size(); ++i)
    EXPECT_GE(events[i].start_time - events[i - 1].start_time, cfg.min_separation - 1e-9);
  for (const auto& ev : events) {
    EXPECT_GE(ev.duration, cfg.min_duration);
    EXPECT_LE(ev.duration, cfg.max_duration);
    for (double tau : ev.peak_torque)
      EXPECT_GE(std::fabs(tau), cfg.min_peak_torque);
  }
}

TEST(CollisionSchedule, TorqueOnlyInsideEventsAndLabelCoversRecovery) {
  CollisionScheduleConfig cfg;
  cfg.n_events = 5;
  cfg.experiment_duration = 100.0;
  cfg.seed = 12;
  const CollisionSchedule sched(cfg);
  const auto& ev = sched.events().front();

  const auto before = sched.torque_at(ev.start_time - 0.5);
  for (double tau : before) EXPECT_DOUBLE_EQ(tau, 0.0);

  const auto mid = sched.torque_at(ev.start_time + ev.duration / 2.0);
  double total = 0.0;
  for (double tau : mid) total += std::fabs(tau);
  EXPECT_GT(total, cfg.min_peak_torque * 0.4);

  EXPECT_FALSE(sched.active_at(ev.start_time - 0.01));
  EXPECT_TRUE(sched.active_at(ev.start_time + ev.duration / 2.0));
  // Protective stop and recovery are labelled although no torque is applied.
  const double label_end = ev.start_time + ev.duration + ev.stop_duration + cfg.recovery_label_s;
  EXPECT_TRUE(sched.active_at(label_end - 0.01));
  EXPECT_FALSE(sched.active_at(label_end + 0.1));
  // The controller holds the trajectory after the detection delay.
  EXPECT_TRUE(sched.stop_hold_at(ev.start_time + cfg.stop_detection_delay + 0.01));
  EXPECT_FALSE(sched.stop_hold_at(ev.start_time + ev.duration + ev.stop_duration + 0.05));
}

TEST(CollisionSchedule, EmptyScheduleIsInert) {
  const CollisionSchedule sched;
  EXPECT_FALSE(sched.active_at(1.0));
  for (double tau : sched.torque_at(1.0)) EXPECT_DOUBLE_EQ(tau, 0.0);
}

TEST(CollisionSchedule, RejectsImpossibleConfigs) {
  CollisionScheduleConfig cfg;
  cfg.n_events = 100;
  cfg.experiment_duration = 10.0;  // cannot fit 100 separated events
  EXPECT_THROW(CollisionSchedule{cfg}, Error);
}

TEST(MicroDisturbances, BoundedAndIntermittent) {
  MicroDisturbanceConfig cfg;
  MicroDisturbanceGenerator gen(cfg, 21);
  int active_steps = 0;
  const int n_steps = 20000;  // 100 s at 200 Hz
  for (int i = 1; i <= n_steps; ++i) {
    const auto tau = gen.torque_at(i * 0.005);
    double total = 0.0;
    for (double v : tau) total += std::fabs(v);
    // Envelope bound: peak * (1 + chatter).
    EXPECT_LE(total, cfg.max_peak_torque * (1.0 + cfg.chatter_amplitude) + 1e-9);
    if (total > 0.0) ++active_steps;
  }
  const double duty = static_cast<double>(active_steps) / n_steps;
  // Expected duty ~ mean_duration / (mean_interval + mean_duration).
  EXPECT_GT(duty, 0.02);
  EXPECT_LT(duty, 0.25);
}

TEST(Simulator, StreamHas86ChannelsAndSchema) {
  SimulatorConfig cfg;
  cfg.sample_rate_hz = 100.0;
  cfg.n_actions = 3;
  RobotCellSimulator sim(cfg);
  const data::MultivariateSeries series = sim.record(2.0);
  EXPECT_EQ(series.n_channels(), data::kKukaChannelCount);
  EXPECT_EQ(series.length(), 200);
  EXPECT_EQ(series.channels().size(), 86U);
  EXPECT_FALSE(series.has_anomalies());
  EXPECT_DOUBLE_EQ(series.sample_rate_hz(), 100.0);
}

TEST(Simulator, ActionIdChannelIsValid) {
  SimulatorConfig cfg;
  cfg.sample_rate_hz = 50.0;
  cfg.n_actions = 4;
  RobotCellSimulator sim(cfg);
  const auto series = sim.record(30.0);
  for (Index t = 0; t < series.length(); ++t) {
    const float id = series.value(t, 0);
    EXPECT_GE(id, 0.0F);
    EXPECT_LT(id, 4.0F);
    EXPECT_FLOAT_EQ(id, std::floor(id));
  }
}

TEST(Simulator, QuaternionChannelsStayNormalised) {
  SimulatorConfig cfg;
  cfg.sample_rate_hz = 50.0;
  RobotCellSimulator sim(cfg);
  const auto series = sim.record(3.0);
  for (Index t = 0; t < series.length(); t += 7) {
    for (Index j = 0; j < data::kKukaJointCount; ++j) {
      const Index base = data::kuka_joint_channel_base(j) + 6;
      double norm = 0.0;
      for (Index k = 0; k < 4; ++k) {
        const double v = series.value(t, base + k);
        norm += v * v;
      }
      EXPECT_NEAR(std::sqrt(norm), 1.0, 1e-4);
    }
  }
}

TEST(Simulator, CollisionsAreLabelledAndPerturbPower) {
  SimulatorConfig cfg;
  cfg.sample_rate_hz = 50.0;
  cfg.seed = 31;
  RobotCellSimulator sim(cfg);
  CollisionScheduleConfig coll;
  coll.n_events = 5;
  coll.experiment_duration = 60.0;
  coll.seed = 32;
  sim.set_collision_schedule(CollisionSchedule(coll));
  const auto series = sim.record(60.0);
  EXPECT_TRUE(series.has_anomalies());
  const Index n_anom = series.count_anomalous_samples();
  EXPECT_GT(n_anom, 50);
  EXPECT_LT(n_anom, series.length() / 2);

  // Mean |power - idle| is larger inside labelled regions.
  const Index power_ch = data::kuka_power_channel_base() + 3;
  double anom_power = 0.0;
  double norm_power = 0.0;
  Index na = 0;
  Index nn = 0;
  for (Index t = 0; t < series.length(); ++t) {
    if (series.label(t)) {
      anom_power += series.value(t, power_ch);
      ++na;
    } else {
      norm_power += series.value(t, power_ch);
      ++nn;
    }
  }
  EXPECT_GT(anom_power / na, norm_power / nn);
}

TEST(Simulator, NoiseSeedChangesDataButNotActions) {
  SimulatorConfig a;
  a.sample_rate_hz = 50.0;
  a.seed = 7;
  a.noise_seed = 100;
  SimulatorConfig b = a;
  b.noise_seed = 200;
  RobotCellSimulator sim_a(a);
  RobotCellSimulator sim_b(b);
  const auto sa = sim_a.record(5.0);
  const auto sb = sim_b.record(5.0);
  // Same schedule: action IDs match everywhere.
  for (Index t = 0; t < sa.length(); t += 13)
    EXPECT_FLOAT_EQ(sa.value(t, 0), sb.value(t, 0));
  // But the sensor values differ.
  double diff = 0.0;
  for (Index t = 0; t < sa.length(); ++t) diff += std::fabs(sa.value(t, 5) - sb.value(t, 5));
  EXPECT_GT(diff, 1e-3);
}

TEST(Simulator, DeterministicGivenSeeds) {
  SimulatorConfig cfg;
  cfg.sample_rate_hz = 50.0;
  cfg.seed = 9;
  RobotCellSimulator a(cfg);
  RobotCellSimulator b(cfg);
  const auto sa = a.record(3.0);
  const auto sb = b.record(3.0);
  for (Index t = 0; t < sa.length(); t += 11)
    for (Index c = 0; c < sa.n_channels(); c += 7)
      EXPECT_FLOAT_EQ(sa.value(t, c), sb.value(t, c));
}

}  // namespace
}  // namespace varade::robot
