// kNN substrate tests: kd-tree vs brute force equivalence and anomaly scores.
#include <gtest/gtest.h>

#include <cmath>

#include "varade/knn/kdtree.hpp"
#include "varade/knn/knn.hpp"

namespace varade::knn {
namespace {

TEST(KdTree, FindsExactNearestNeighbour) {
  Tensor pts = Tensor::matrix({{0, 0}, {1, 0}, {0, 1}, {5, 5}});
  KdTree tree;
  tree.build(pts);
  const auto nbs = tree.query(Tensor::vector({0.9F, 0.1F}), 1);
  ASSERT_EQ(nbs.size(), 1U);
  EXPECT_EQ(nbs[0].index, 1);
}

TEST(KdTree, ReturnsSortedDistances) {
  Rng rng(1);
  const Tensor pts = Tensor::randn({100, 3}, rng);
  KdTree tree;
  tree.build(pts);
  const Tensor q = Tensor::randn({3}, rng);
  const auto nbs = tree.query(q, 10);
  ASSERT_EQ(nbs.size(), 10U);
  for (std::size_t i = 1; i < nbs.size(); ++i) EXPECT_LE(nbs[i - 1].dist_sq, nbs[i].dist_sq);
}

TEST(KdTree, ErrorsOnMisuse) {
  KdTree tree;
  EXPECT_THROW(tree.query(Tensor::vector({1.0F}), 1), Error);
  EXPECT_THROW(tree.build(Tensor({3})), Error);
  tree.build(Tensor::matrix({{1, 2}, {3, 4}}));
  EXPECT_THROW(tree.query(Tensor::vector({1.0F}), 1), Error);  // wrong dim
  EXPECT_THROW(tree.query(Tensor::vector({1.0F, 2.0F}), 0), Error);
}

// Property: the kd-tree and brute force must return identical neighbour sets.
class KdTreeVsBruteForce : public ::testing::TestWithParam<std::tuple<Index, Index, int>> {};

TEST_P(KdTreeVsBruteForce, IdenticalResults) {
  const auto [n, d, k] = GetParam();
  Rng rng(42 + n + d);
  const Tensor pts = Tensor::randn({n, d}, rng);
  KdTree tree;
  tree.build(pts);

  for (int trial = 0; trial < 20; ++trial) {
    const Tensor q = Tensor::randn({d}, rng);
    const auto fast = tree.query(q, k);

    // Brute-force reference.
    std::vector<Neighbor> ref;
    for (Index i = 0; i < n; ++i) {
      float dist = 0.0F;
      for (Index j = 0; j < d; ++j) {
        const float diff = q[j] - pts[i * d + j];
        dist += diff * diff;
      }
      ref.push_back({dist, i});
    }
    std::sort(ref.begin(), ref.end());
    ref.resize(static_cast<std::size_t>(k));

    ASSERT_EQ(fast.size(), ref.size());
    for (std::size_t i = 0; i < ref.size(); ++i)
      EXPECT_NEAR(fast[i].dist_sq, ref[i].dist_sq, 1e-5F) << "trial " << trial << " rank " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, KdTreeVsBruteForce,
                         ::testing::Values(std::tuple<Index, Index, int>{50, 2, 5},
                                           std::tuple<Index, Index, int>{200, 3, 1},
                                           std::tuple<Index, Index, int>{100, 5, 7},
                                           std::tuple<Index, Index, int>{64, 8, 3}));

TEST(KnnScorer, BackendsAgree) {
  Rng rng(7);
  const Tensor ref = Tensor::randn({200, 4}, rng);

  KnnConfig tree_cfg;
  tree_cfg.kdtree_max_dims = 16;  // forces kd-tree for 4 dims
  KnnAnomalyScorer with_tree(tree_cfg);
  with_tree.fit(ref);
  EXPECT_TRUE(with_tree.using_kdtree());

  KnnConfig brute_cfg;
  brute_cfg.kdtree_max_dims = 0;  // forces brute force
  KnnAnomalyScorer brute(brute_cfg);
  brute.fit(ref);
  EXPECT_FALSE(brute.using_kdtree());

  for (int trial = 0; trial < 25; ++trial) {
    const Tensor q = Tensor::randn({4}, rng);
    EXPECT_NEAR(with_tree.score_one(q), brute.score_one(q), 1e-4F);
  }
}

TEST(KnnScorer, OutlierScoresHigherThanInlier) {
  Rng rng(8);
  const Tensor ref = Tensor::randn({500, 3}, rng);
  KnnAnomalyScorer scorer({.k = 5});
  scorer.fit(ref);
  const float inlier = scorer.score_one(Tensor::vector({0.0F, 0.0F, 0.0F}));
  const float outlier = scorer.score_one(Tensor::vector({10.0F, 10.0F, 10.0F}));
  EXPECT_GT(outlier, 5.0F * inlier);
}

TEST(KnnScorer, MaxVsMeanDistance) {
  // Max distance (paper default) is >= mean distance for any query.
  Rng rng(9);
  const Tensor ref = Tensor::randn({100, 2}, rng);
  KnnAnomalyScorer max_scorer({.k = 5, .score = KnnScore::kMaxDistance});
  KnnAnomalyScorer mean_scorer({.k = 5, .score = KnnScore::kMeanDistance});
  max_scorer.fit(ref);
  mean_scorer.fit(ref);
  for (int trial = 0; trial < 10; ++trial) {
    const Tensor q = Tensor::randn({2}, rng);
    EXPECT_GE(max_scorer.score_one(q), mean_scorer.score_one(q) - 1e-6F);
  }
}

TEST(KnnScorer, SubsamplingBoundsReferenceSize) {
  Rng rng(10);
  const Tensor ref = Tensor::randn({1000, 2}, rng);
  KnnConfig cfg;
  cfg.max_reference_points = 128;
  KnnAnomalyScorer scorer(cfg);
  scorer.fit(ref);
  EXPECT_EQ(scorer.reference_size(), 128);
}

TEST(KnnScorer, TrainingPointScoresNearZeroWithKOne) {
  Rng rng(11);
  const Tensor ref = Tensor::randn({50, 2}, rng);
  KnnAnomalyScorer scorer({.k = 1});
  scorer.fit(ref);
  // A reference point's own nearest neighbour is itself.
  EXPECT_NEAR(scorer.score_one(ref.row(7)), 0.0F, 1e-5F);
}

TEST(KnnScorer, ErrorsOnMisuse) {
  KnnAnomalyScorer scorer({.k = 5});
  EXPECT_THROW(scorer.score_one(Tensor::vector({1.0F})), Error);
  EXPECT_THROW(scorer.fit(Tensor({3, 2})), Error);  // fewer rows than k
  EXPECT_THROW(KnnAnomalyScorer({.k = 0}), Error);
}

}  // namespace
}  // namespace varade::knn
