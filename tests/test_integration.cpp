// End-to-end integration test: simulate the robotic cell, train detectors,
// score the collision experiment, and check the pipeline invariants — a
// miniature of the Table 2 bench.
#include <gtest/gtest.h>

#include "varade/core/experiment.hpp"
#include "varade/core/model_costs.hpp"
#include "varade/edge/device.hpp"
#include "varade/eval/metrics.hpp"

namespace varade::core {
namespace {

Profile tiny_profile() {
  Profile p = repro_profile();
  p.sample_rate_hz = 50.0;
  p.train_duration_s = 60.0;
  p.test_duration_s = 50.0;
  p.n_collisions = 6;
  p.eval_stride = 5;
  p.varade.window = 32;
  p.varade.base_channels = 8;
  p.varade.epochs = 3;
  p.varade.train_stride = 8;
  p.ar_lstm.window = 16;
  p.ar_lstm.hidden = 12;
  p.ar_lstm.n_layers = 1;
  p.ar_lstm.epochs = 1;
  p.ar_lstm.train_stride = 16;
  p.gbrf.window = 32;
  p.gbrf.feature_steps = 4;
  p.gbrf.forest.n_trees = 5;
  p.gbrf.forest.tree.max_depth = 3;
  p.gbrf.forest.tree.max_features = 12;
  p.gbrf.forest.subsample = 0.5F;
  p.ae.window = 32;
  p.ae.base_channels = 6;
  p.ae.epochs = 2;
  p.ae.train_stride = 8;
  p.knn.max_reference_points = 500;
  p.iforest.forest.n_trees = 30;
  return p;
}

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    profile_ = new Profile(tiny_profile());
    data_ = new ExperimentData(generate_experiment_data(*profile_));
  }
  static void TearDownTestSuite() {
    delete data_;
    delete profile_;
    data_ = nullptr;
    profile_ = nullptr;
  }

  static Profile* profile_;
  static ExperimentData* data_;
};

Profile* IntegrationTest::profile_ = nullptr;
ExperimentData* IntegrationTest::data_ = nullptr;

TEST_F(IntegrationTest, DataGenerationInvariants) {
  EXPECT_EQ(data_->train.n_channels(), data::kKukaChannelCount);
  EXPECT_EQ(data_->test.n_channels(), data::kKukaChannelCount);
  EXPECT_EQ(data_->train.length(), 3000);
  EXPECT_EQ(data_->test.length(), 2500);
  EXPECT_FALSE(data_->train.has_anomalies());
  EXPECT_TRUE(data_->test.has_anomalies());
  EXPECT_EQ(data_->n_collision_events, 6);
  // Normalisation puts the training data into [-1, 1].
  const Tensor train = data_->train.to_tensor();
  EXPECT_GE(train.min(), -1.0F - 1e-5F);
  EXPECT_LE(train.max(), 1.0F + 1e-5F);
}

TEST_F(IntegrationTest, AnomalousFractionIsReasonable) {
  const double frac = static_cast<double>(data_->test.count_anomalous_samples()) /
                      static_cast<double>(data_->test.length());
  EXPECT_GT(frac, 0.02);
  EXPECT_LT(frac, 0.5);
}

TEST_F(IntegrationTest, EveryDetectorRunsAndBeatsChance) {
  for (const std::string& name : detector_names()) {
    const DetectorRun run = run_detector(name, *data_, *profile_);
    EXPECT_EQ(run.detector, name);
    EXPECT_GT(run.auc_roc, 0.5) << name << " must beat chance on collisions";
    EXPECT_LE(run.auc_roc, 1.0) << name;
    EXPECT_GT(run.host_inference_hz, 0.0) << name;
    EXPECT_FALSE(run.scores.scores.empty()) << name;
    for (float s : run.scores.scores) EXPECT_TRUE(std::isfinite(s)) << name;
  }
}

TEST_F(IntegrationTest, EdgeEstimatesWorkForTrainedDetectors) {
  const edge::EdgeProfiler nx(edge::jetson_xavier_nx());
  auto det = make_detector(*profile_, "VARADE");
  det->fit(data_->train);
  const edge::EstimatedPerformance perf = nx.estimate(det->cost());
  EXPECT_GT(perf.inference_hz, 0.0);
  EXPECT_GE(perf.power_w, edge::jetson_xavier_nx().idle_power_w);
}

TEST_F(IntegrationTest, ScoresAlignWithTestLabels) {
  auto det = make_detector(*profile_, "kNN");
  det->fit(data_->train);
  const SeriesScores scores = det->score_series(data_->test, profile_->eval_stride);
  for (std::size_t i = 0; i < scores.times.size(); ++i)
    EXPECT_EQ(scores.labels[i], data_->test.label(scores.times[i]));
}

TEST(IntegrationSmall, DeterministicExperimentData) {
  Profile p = tiny_profile();
  p.train_duration_s = 20.0;
  p.test_duration_s = 20.0;
  p.n_collisions = 2;
  const ExperimentData a = generate_experiment_data(p);
  const ExperimentData b = generate_experiment_data(p);
  EXPECT_TRUE(allclose(a.train.to_tensor(), b.train.to_tensor()));
  EXPECT_TRUE(allclose(a.test.to_tensor(), b.test.to_tensor()));
}

TEST(IntegrationSmall, RejectsBadDurations) {
  Profile p = tiny_profile();
  p.train_duration_s = -1.0;
  EXPECT_THROW(generate_experiment_data(p), Error);
}

}  // namespace
}  // namespace varade::core
