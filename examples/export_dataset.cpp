// Dataset export: generates the simulated KUKA recordings (normal training
// run + labelled collision experiment) and writes them as CSV with the
// Table 1 channel header — the same interchange format as the dataset
// released with the paper — so external tooling (python, pandas, the
// original repository) can consume the streams directly.
//
// Usage: export_dataset [output_dir]   (default: current directory)
#include <cstdio>
#include <string>

#include "varade/data/csv.hpp"
#include "varade/robot/simulator.hpp"

int main(int argc, char** argv) {
  using namespace varade;
  const std::string dir = argc > 1 ? argv[1] : ".";

  robot::SimulatorConfig cfg;
  cfg.sample_rate_hz = 50.0;
  cfg.seed = 42;

  // Normal training recording.
  cfg.noise_seed = 421;
  robot::RobotCellSimulator train_sim(cfg);
  std::printf("simulating training recording (normal operation)...\n");
  const data::MultivariateSeries train = train_sim.record(120.0);
  const std::string train_path = dir + "/kuka_train.csv";
  data::write_csv(train, train_path);
  std::printf("wrote %s (%ld samples x %ld channels)\n", train_path.c_str(), train.length(),
              train.n_channels());

  // Collision experiment.
  cfg.noise_seed = 422;
  robot::RobotCellSimulator test_sim(cfg);
  robot::CollisionScheduleConfig collisions;
  collisions.n_events = 12;
  collisions.experiment_duration = 120.0;
  collisions.seed = 423;
  test_sim.set_collision_schedule(robot::CollisionSchedule(collisions));
  std::printf("simulating collision experiment (%d collisions)...\n", collisions.n_events);
  const data::MultivariateSeries test = test_sim.record(120.0);
  const std::string test_path = dir + "/kuka_collisions.csv";
  data::write_csv(test, test_path);
  std::printf("wrote %s (%ld samples, %ld labelled anomalous)\n", test_path.c_str(),
              test.length(), test.count_anomalous_samples());

  // Round-trip sanity check.
  const data::MultivariateSeries back = data::read_csv(test_path);
  std::printf("round-trip check: %ld samples, %ld channels, %ld anomalous — %s\n", back.length(),
              back.n_channels(), back.count_anomalous_samples(),
              back.length() == test.length() ? "OK" : "MISMATCH");
  return 0;
}
