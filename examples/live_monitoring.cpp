// Live monitoring scenario: the paper's deployment loop (section 4.3) — a
// script continuously reads sensors, preprocesses, and calls the detector —
// recreated against the simulated cell.
//
// The detector is trained offline on a normal recording, an alarm threshold
// is calibrated on training scores (99.5th percentile), and the monitor then
// consumes the live stream sample by sample through a ring buffer, raising
// alarms in real time. At the end the alarm log is compared with the
// ground-truth collision schedule.
//
// Three modes:
//   (default)            — everything in one process, as above.
//   --daemon <endpoint>  — train, then serve the detector over the wire
//                          (varade::net) until SIGINT or a SHUTDOWN frame.
//   --client <endpoint>  — run only the simulated cell; stream raw samples
//                          to a daemon and report the ALARM frames it sends
//                          back against the local ground truth.
// Split across two terminals, --daemon/--client is the paper's loop with the
// sensor script and the scoring engine in separate processes.
#include <algorithm>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <deque>
#include <memory>

#include "varade/core/varade.hpp"
#include "varade/data/normalize.hpp"
#include "varade/data/window.hpp"
#include "varade/eval/metrics.hpp"
#include "varade/net/client.hpp"
#include "varade/net/server.hpp"
#include "varade/robot/simulator.hpp"

namespace {

using namespace varade;

/// Fixed-capacity ring of normalised samples forming the model context.
class ContextRing {
 public:
  ContextRing(Index channels, Index window) : channels_(channels), window_(window) {}

  void push(const std::vector<float>& sample) {
    buffer_.push_back(sample);
    if (static_cast<Index>(buffer_.size()) > window_) buffer_.pop_front();
  }

  bool full() const { return static_cast<Index>(buffer_.size()) == window_; }

  /// Channels-first [C, T] tensor of the buffered context.
  Tensor context() const {
    Tensor out({channels_, window_});
    for (Index t = 0; t < window_; ++t)
      for (Index c = 0; c < channels_; ++c)
        out[c * window_ + t] = buffer_[static_cast<std::size_t>(t)][static_cast<std::size_t>(c)];
    return out;
  }

 private:
  Index channels_;
  Index window_;
  std::deque<std::vector<float>> buffer_;
};

/// Shared sampling config so daemon and client agree on rates and seeds.
robot::SimulatorConfig base_sim_config() {
  robot::SimulatorConfig sim_cfg;
  sim_cfg.sample_rate_hz = 50.0;
  sim_cfg.seed = 11;
  sim_cfg.noise_seed = 111;
  return sim_cfg;
}

/// Offline phase: record a normal run, fit the normalizer and detector,
/// calibrate the alarm threshold (99.5th percentile of training scores).
struct Offline {
  data::MinMaxNormalizer normalizer;
  std::unique_ptr<core::VaradeDetector> detector;  // not movable by value
  float threshold = 0.0F;
};

core::VaradeConfig example_varade_config() {
  core::VaradeConfig cfg;
  cfg.window = 32;
  cfg.base_channels = 16;
  cfg.lambda = 1.0F;
  cfg.epochs = 12;
  cfg.learning_rate = 1e-3F;
  cfg.train_stride = 4;
  return cfg;
}

Offline train_offline() {
  robot::RobotCellSimulator train_sim(base_sim_config());
  const data::MultivariateSeries train_raw = train_sim.record(180.0);

  const core::VaradeConfig cfg = example_varade_config();
  Offline off;
  off.detector = std::make_unique<core::VaradeDetector>(cfg);
  off.normalizer.fit(train_raw);
  const data::MultivariateSeries train = off.normalizer.transform(train_raw);
  std::printf("offline: training VARADE on %ld samples...\n", train.length());
  off.detector->fit(train);

  std::vector<float> train_scores;
  for (Index t = cfg.window; t < train.length(); t += 4)
    train_scores.push_back(
        off.detector->variance_score(data::extract_context(train, t - 1, cfg.window)));
  std::sort(train_scores.begin(), train_scores.end());
  off.threshold =
      train_scores[static_cast<std::size_t>(0.995 * static_cast<double>(train_scores.size()))];
  std::printf("offline: alarm threshold %.5f (99.5th percentile of %zu train scores)\n",
              off.threshold, train_scores.size());
  return off;
}

/// The live cell with its scheduled collisions — identical in every mode, so
/// the client-mode ground truth matches what the default mode sees.
robot::RobotCellSimulator make_live_sim() {
  robot::SimulatorConfig sim_cfg = base_sim_config();
  sim_cfg.noise_seed = 112;
  robot::RobotCellSimulator live_sim(sim_cfg);
  robot::CollisionScheduleConfig collisions;
  collisions.n_events = 8;
  collisions.experiment_duration = 120.0;
  collisions.seed = 113;
  live_sim.set_collision_schedule(robot::CollisionSchedule(collisions));
  return live_sim;
}

net::Server* g_server = nullptr;
void on_signal(int) {
  if (g_server != nullptr) g_server->request_stop();
}

/// --daemon: train, then hand the detector to a varade::net server and block
/// until SIGINT/SIGTERM or a client's SHUTDOWN frame.
int run_daemon(const std::string& endpoint_spec) {
  const net::Endpoint endpoint = net::parse_endpoint(endpoint_spec);
  Offline off = train_offline();

  net::ServerConfig config;
  if (endpoint.kind == net::Endpoint::Kind::Unix) {
    config.uds_path = endpoint.path;
  } else {
    config.tcp_host = endpoint.host;
    config.tcp_port = endpoint.port;
  }
  config.n_streams = 1;  // one robot cell
  config.threshold = off.threshold;
  net::Server server(*off.detector, off.normalizer, config);
  g_server = &server;
  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  std::printf("daemon: serving 1 stream x %ld channels on %s (ctrl-C to stop)\n",
              static_cast<long>(data::kKukaChannelCount), net::to_string(endpoint).c_str());
  server.run();
  g_server = nullptr;
  std::printf("daemon: stopped\n");
  return 0;
}

/// --client: no model in this process at all — stream raw sensor samples to
/// the daemon and fold its ALARM frames back onto the local ground truth.
int run_client(const std::string& endpoint_spec) {
  const net::Endpoint endpoint = net::parse_endpoint(endpoint_spec);
  net::Client client(endpoint);
  if (client.n_channels() != data::kKukaChannelCount) {
    std::fprintf(stderr, "daemon serves %ld channels, the cell has %ld\n",
                 static_cast<long>(client.n_channels()),
                 static_cast<long>(data::kKukaChannelCount));
    return 1;
  }
  std::printf("client: connected to %s (threshold %.5f)\n", net::to_string(endpoint).c_str(),
              client.welcome().threshold);

  robot::RobotCellSimulator live_sim = make_live_sim();
  const double sample_rate = base_sim_config().sample_rate_hz;
  const long n_steps = static_cast<long>(120.0 * sample_rate);
  std::printf("client: streaming %ld samples (%.0f s at %.0f Hz)...\n\n", n_steps, 120.0,
              sample_rate);

  // Ground-truth bookkeeping: label per sample, plus [first, last] sample
  // ranges of each collision event, filled in as the simulation advances.
  std::vector<bool> labels;
  std::vector<std::pair<long, long>> events;
  std::vector<bool> event_detected;
  std::vector<double> times;

  long alarms = 0;
  long true_alarms = 0;
  std::uint64_t scores_seen = 0;
  net::ClientEvent ev;
  auto handle = [&](const net::ClientEvent& e) {
    if (e.kind == net::ClientEvent::Kind::Score) {
      ++scores_seen;
    } else if (e.kind == net::ClientEvent::Kind::Alarm) {
      const auto onset = static_cast<long>(e.alarm.onset_sample);
      const auto last = static_cast<long>(e.alarm.last_sample);
      if (e.alarm.raised) {
        ++alarms;
        const bool labelled = onset < static_cast<long>(labels.size()) &&
                              labels[static_cast<std::size_t>(onset)];
        if (labelled) ++true_alarms;
        std::printf("  t=%7.2fs  ALARM  score %.5f  (ground truth: %s)\n",
                    times[static_cast<std::size_t>(onset)], e.alarm.peak_score,
                    labelled ? "collision" : "normal");
      }
      // Any alarm overlapping a collision event marks that event detected.
      for (std::size_t i = 0; i < events.size(); ++i)
        if (onset <= events[i].second && last >= events[i].first) event_detected[i] = true;
    }
  };

  bool in_event = false;
  for (long step = 0; step < n_steps; ++step) {
    const robot::RobotSample sample = live_sim.step();
    labels.push_back(sample.label);
    times.push_back(sample.time);
    if (sample.label && !in_event) {
      events.emplace_back(step, step);
      event_detected.push_back(false);
      in_event = true;
    } else if (sample.label) {
      events.back().second = step;
    } else {
      in_event = false;
    }
    client.send_sample(0, static_cast<std::uint64_t>(step), sample.channels.data());
    while (client.poll_event(ev, 0)) handle(ev);
  }
  client.flush();
  while (scores_seen < static_cast<std::uint64_t>(n_steps) && client.poll_event(ev, 30000))
    handle(ev);
  client.send_goodbye();

  const long detected =
      static_cast<long>(std::count(event_detected.begin(), event_detected.end(), true));
  std::printf("\nsummary: %ld alarms raised, %ld on labelled samples; %ld / %zu collision "
              "events detected\n",
              alarms, true_alarms, detected, events.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace varade;

  if (argc == 3 && std::strcmp(argv[1], "--daemon") == 0) return run_daemon(argv[2]);
  if (argc == 3 && std::strcmp(argv[1], "--client") == 0) return run_client(argv[2]);
  if (argc != 1) {
    std::fprintf(stderr,
                 "usage: %s                     # in-process monitoring loop\n"
                 "       %s --daemon <endpoint> # train + serve over the wire\n"
                 "       %s --client <endpoint> # stream the cell to a daemon\n",
                 argv[0], argv[0], argv[0]);
    return 2;
  }

  Offline off = train_offline();
  data::MinMaxNormalizer& normalizer = off.normalizer;
  core::VaradeDetector& detector = *off.detector;
  const float threshold = off.threshold;
  const core::VaradeConfig cfg = example_varade_config();
  robot::SimulatorConfig sim_cfg = base_sim_config();

  // Live phase: the monitoring loop.
  robot::RobotCellSimulator live_sim = make_live_sim();

  ContextRing ring(data::kKukaChannelCount, cfg.window);
  std::vector<float> normalised(data::kKukaChannelCount);
  long alarms = 0;
  long true_alarms = 0;
  bool in_alarm = false;
  long detected_events = 0;
  bool current_event_detected = false;
  long total_events = 0;
  bool in_event = false;

  const long n_steps = static_cast<long>(120.0 * sim_cfg.sample_rate_hz);
  std::printf("live: monitoring %ld samples (%.0f s at %.0f Hz)...\n\n", n_steps, 120.0,
              sim_cfg.sample_rate_hz);
  for (long step = 0; step < n_steps; ++step) {
    const robot::RobotSample sample = live_sim.step();

    // Event bookkeeping for the final report.
    if (sample.label && !in_event) {
      ++total_events;
      in_event = true;
      current_event_detected = false;
    } else if (!sample.label && in_event) {
      if (current_event_detected) ++detected_events;
      in_event = false;
    }

    normalizer.transform_sample(sample.channels.data(), normalised.data());
    ring.push(normalised);
    if (!ring.full()) continue;

    const float score = detector.variance_score(ring.context());
    const bool alarm = score > threshold;
    if (alarm && !in_alarm) {
      ++alarms;
      if (sample.label) {
        ++true_alarms;
        current_event_detected = true;
      }
      std::printf("  t=%7.2fs  ALARM  score %.5f  (ground truth: %s)\n", sample.time, score,
                  sample.label ? "collision" : "normal");
    }
    if (alarm && sample.label) current_event_detected = true;
    in_alarm = alarm;
  }
  if (in_event && current_event_detected) ++detected_events;

  std::printf("\nsummary: %ld alarms raised, %ld on labelled samples; %ld / %ld collision "
              "events detected\n",
              alarms, true_alarms, detected_events, total_events);
  return 0;
}
