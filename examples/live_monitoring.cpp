// Live monitoring scenario: the paper's deployment loop (section 4.3) — a
// script continuously reads sensors, preprocesses, and calls the detector —
// recreated against the simulated cell.
//
// The detector is trained offline on a normal recording, an alarm threshold
// is calibrated on training scores (99.5th percentile), and the monitor then
// consumes the live stream sample by sample through a ring buffer, raising
// alarms in real time. At the end the alarm log is compared with the
// ground-truth collision schedule.
#include <algorithm>
#include <cstdio>
#include <deque>

#include "varade/core/varade.hpp"
#include "varade/data/normalize.hpp"
#include "varade/data/window.hpp"
#include "varade/eval/metrics.hpp"
#include "varade/robot/simulator.hpp"

namespace {

using namespace varade;

/// Fixed-capacity ring of normalised samples forming the model context.
class ContextRing {
 public:
  ContextRing(Index channels, Index window) : channels_(channels), window_(window) {}

  void push(const std::vector<float>& sample) {
    buffer_.push_back(sample);
    if (static_cast<Index>(buffer_.size()) > window_) buffer_.pop_front();
  }

  bool full() const { return static_cast<Index>(buffer_.size()) == window_; }

  /// Channels-first [C, T] tensor of the buffered context.
  Tensor context() const {
    Tensor out({channels_, window_});
    for (Index t = 0; t < window_; ++t)
      for (Index c = 0; c < channels_; ++c)
        out[c * window_ + t] = buffer_[static_cast<std::size_t>(t)][static_cast<std::size_t>(c)];
    return out;
  }

 private:
  Index channels_;
  Index window_;
  std::deque<std::vector<float>> buffer_;
};

}  // namespace

int main() {
  using namespace varade;

  // Offline phase: record, normalise, train, calibrate threshold.
  robot::SimulatorConfig sim_cfg;
  sim_cfg.sample_rate_hz = 50.0;
  sim_cfg.seed = 11;
  sim_cfg.noise_seed = 111;
  robot::RobotCellSimulator train_sim(sim_cfg);
  const data::MultivariateSeries train_raw = train_sim.record(180.0);

  data::MinMaxNormalizer normalizer;
  normalizer.fit(train_raw);
  const data::MultivariateSeries train = normalizer.transform(train_raw);

  core::VaradeConfig cfg;
  cfg.window = 32;
  cfg.base_channels = 16;
  cfg.lambda = 1.0F;
  cfg.epochs = 12;
  cfg.learning_rate = 1e-3F;
  cfg.train_stride = 4;
  core::VaradeDetector detector(cfg);
  std::printf("offline: training VARADE on %ld samples...\n", train.length());
  detector.fit(train);

  // Calibrate the alarm threshold at the 99.5th percentile of train scores.
  std::vector<float> train_scores;
  for (Index t = cfg.window; t < train.length(); t += 4)
    train_scores.push_back(detector.variance_score(data::extract_context(train, t - 1, cfg.window)));
  std::sort(train_scores.begin(), train_scores.end());
  const float threshold =
      train_scores[static_cast<std::size_t>(0.995 * static_cast<double>(train_scores.size()))];
  std::printf("offline: alarm threshold %.5f (99.5th percentile of %zu train scores)\n",
              threshold, train_scores.size());

  // Live phase: the monitoring loop.
  sim_cfg.noise_seed = 112;
  robot::RobotCellSimulator live_sim(sim_cfg);
  robot::CollisionScheduleConfig collisions;
  collisions.n_events = 8;
  collisions.experiment_duration = 120.0;
  collisions.seed = 113;
  live_sim.set_collision_schedule(robot::CollisionSchedule(collisions));

  ContextRing ring(data::kKukaChannelCount, cfg.window);
  std::vector<float> normalised(data::kKukaChannelCount);
  long alarms = 0;
  long true_alarms = 0;
  bool in_alarm = false;
  long detected_events = 0;
  bool current_event_detected = false;
  long total_events = 0;
  bool in_event = false;

  const long n_steps = static_cast<long>(120.0 * sim_cfg.sample_rate_hz);
  std::printf("live: monitoring %ld samples (%.0f s at %.0f Hz)...\n\n", n_steps, 120.0,
              sim_cfg.sample_rate_hz);
  for (long step = 0; step < n_steps; ++step) {
    const robot::RobotSample sample = live_sim.step();

    // Event bookkeeping for the final report.
    if (sample.label && !in_event) {
      ++total_events;
      in_event = true;
      current_event_detected = false;
    } else if (!sample.label && in_event) {
      if (current_event_detected) ++detected_events;
      in_event = false;
    }

    normalizer.transform_sample(sample.channels.data(), normalised.data());
    ring.push(normalised);
    if (!ring.full()) continue;

    const float score = detector.variance_score(ring.context());
    const bool alarm = score > threshold;
    if (alarm && !in_alarm) {
      ++alarms;
      if (sample.label) {
        ++true_alarms;
        current_event_detected = true;
      }
      std::printf("  t=%7.2fs  ALARM  score %.5f  (ground truth: %s)\n", sample.time, score,
                  sample.label ? "collision" : "normal");
    }
    if (alarm && sample.label) current_event_detected = true;
    in_alarm = alarm;
  }
  if (in_event && current_event_detected) ++detected_events;

  std::printf("\nsummary: %ld alarms raised, %ld on labelled samples; %ld / %ld collision "
              "events detected\n",
              alarms, true_alarms, detected_events, total_events);
  return 0;
}
