// Model zoo: trains all six detectors of the paper on one shared dataset and
// compares accuracy, training cost, host inference latency, and estimated
// edge behaviour — a compact version of the Table 2 experiment suitable as a
// template for plugging in new detectors.
#include <cstdio>

#include "varade/core/experiment.hpp"
#include "varade/core/model_costs.hpp"
#include "varade/edge/device.hpp"
#include "varade/edge/profiler.hpp"

int main() {
  using namespace varade;

  core::Profile profile = core::repro_profile();
  // Keep the example brisk: a shorter recording than the bench profile.
  profile.train_duration_s = 220.0;
  profile.test_duration_s = 120.0;
  profile.n_collisions = 12;
  profile.varade.epochs = 24;
  profile.ae.epochs = 4;
  profile.ar_lstm.epochs = 2;

  std::printf("generating datasets (train %.0fs, test %.0fs, %d collisions)...\n",
              profile.train_duration_s, profile.test_duration_s, profile.n_collisions);
  const core::ExperimentData data = core::generate_experiment_data(profile);

  const edge::EdgeProfiler nx(edge::jetson_xavier_nx());

  std::printf("\n%-18s %8s %10s %12s %14s %12s\n", "Detector", "AUC", "train s", "host ms/inf",
              "NX est Hz*", "NX est W*");
  for (int i = 0; i < 80; ++i) std::putchar('-');
  std::putchar('\n');

  for (const std::string& name : core::detector_names()) {
    const core::DetectorRun run = core::run_detector(name, data, profile);
    // * edge estimates use the paper-scale architecture cost, as in Table 2.
    const edge::EstimatedPerformance perf = nx.estimate(core::paper_model_cost(name));
    std::printf("%-18s %8.3f %10.1f %12.3f %14.2f %12.2f\n", name.c_str(), run.auc_roc,
                run.train_seconds, run.mean_score_latency_ms, perf.inference_hz, perf.power_w);
    std::fflush(stdout);
  }
  std::printf("\n(*) estimated with the edge roofline model for the paper-scale architectures\n"
              "    on the Jetson Xavier NX; see bench_table2 for the full reproduction.\n");
  return 0;
}
