// Quickstart: the minimal VARADE workflow in ~40 lines of library calls.
//
//  1. simulate a robotic work cell and record normal behaviour,
//  2. record a collision experiment with ground-truth labels,
//  3. normalise with training statistics, train VARADE,
//  4. score the test stream with the predicted variance and evaluate AUC-ROC.
#include <cstdio>

#include "varade/core/varade.hpp"
#include "varade/data/normalize.hpp"
#include "varade/eval/metrics.hpp"
#include "varade/robot/simulator.hpp"

int main() {
  using namespace varade;

  // --- 1. record normal behaviour -------------------------------------------
  robot::SimulatorConfig sim_cfg;
  sim_cfg.sample_rate_hz = 50.0;
  sim_cfg.seed = 7;
  sim_cfg.noise_seed = 71;
  robot::RobotCellSimulator train_sim(sim_cfg);
  const data::MultivariateSeries train_raw = train_sim.record(/*duration_s=*/240.0);
  std::printf("recorded %ld training samples x %ld channels\n", train_raw.length(),
              train_raw.n_channels());

  // --- 2. record a collision experiment -------------------------------------
  sim_cfg.noise_seed = 72;
  robot::RobotCellSimulator test_sim(sim_cfg);
  robot::CollisionScheduleConfig collisions;
  collisions.n_events = 10;
  collisions.experiment_duration = 100.0;
  collisions.seed = 73;
  test_sim.set_collision_schedule(robot::CollisionSchedule(collisions));
  const data::MultivariateSeries test_raw = test_sim.record(100.0);
  std::printf("recorded %ld test samples, %ld anomalous\n", test_raw.length(),
              test_raw.count_anomalous_samples());

  // --- 3. normalise and train ------------------------------------------------
  data::MinMaxNormalizer normalizer;
  normalizer.fit(train_raw);
  const data::MultivariateSeries train = normalizer.transform(train_raw);
  const data::MultivariateSeries test = normalizer.transform(test_raw);

  core::VaradeConfig cfg;
  cfg.window = 32;
  cfg.base_channels = 16;
  cfg.lambda = 1.0F;
  cfg.epochs = 16;
  cfg.learning_rate = 1e-3F;
  cfg.train_stride = 4;
  cfg.verbose = true;
  core::VaradeDetector detector(cfg);
  std::printf("training VARADE (%ld-sample window)...\n", cfg.window);
  detector.fit(train);

  // --- 4. score the stream and evaluate --------------------------------------
  const core::SeriesScores scores = detector.score_series(test, /*stride=*/2);
  const double auc = eval::auc_roc(scores.scores, scores.labels);
  std::printf("\nVARADE variance-score AUC-ROC: %.3f (%zu scored samples, %.2f ms/inference)\n",
              auc, scores.scores.size(), scores.mean_latency_ms);

  // Event-level view: how many of the collision events were caught at the
  // best-F1 threshold.
  const eval::BestF1 best = eval::best_f1(scores.scores, scores.labels);
  const eval::EventStats events = eval::event_detection(scores.scores, scores.labels,
                                                        best.threshold);
  std::printf("best F1 %.3f at threshold %.4f; detected %ld / %ld collision events\n", best.f1,
              best.threshold, events.detected_events, events.total_events);
  return 0;
}
